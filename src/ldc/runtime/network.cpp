#include "ldc/runtime/network.hpp"

#include <algorithm>
#include <chrono>
#include <string>

namespace ldc {
namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Enforces the "destinations unique per round" contract for one sender.
/// Checked before any of the sender's messages are validated or delivered,
/// in both engines, so the error order is engine-independent.
void check_unique_destinations(const Network::Outbox& outbox,
                               std::vector<NodeId>& scratch) {
  if (outbox.size() < 2) return;
  scratch.clear();
  for (const auto& [dest, msg] : outbox) scratch.push_back(dest);
  std::sort(scratch.begin(), scratch.end());
  if (std::adjacent_find(scratch.begin(), scratch.end()) != scratch.end()) {
    throw std::invalid_argument(
        "Network::exchange: duplicate destination in a sender's outbox");
  }
}

}  // namespace

void Network::set_engine(Engine engine, std::size_t threads) {
  engine_ = engine;
  if (engine == Engine::kSerial) {
    pool_.reset();
    return;
  }
  const std::size_t t =
      threads == 0 ? ThreadPool::default_thread_count() : threads;
  if (t <= 1) {
    pool_.reset();  // one lane: run the exact serial code path
    return;
  }
  if (pool_ == nullptr || pool_->size() != t) {
    pool_ = std::make_unique<ThreadPool>(t);
  }
}

void Network::account(const Message& m) {
  ++metrics_.messages;
  metrics_.total_bits += m.bit_count();
  metrics_.max_message_bits =
      std::max(metrics_.max_message_bits, m.bit_count());
  if (budget_bits_ != 0 && m.bit_count() > budget_bits_) {
    ++metrics_.congest_violations;
    if (strict_) {
      throw CongestViolation("message of " + std::to_string(m.bit_count()) +
                             " bits exceeds CONGEST budget of " +
                             std::to_string(budget_bits_));
    }
  }
}

void Network::check_budget(const Message& m) const {
  if (budget_bits_ != 0 && m.bit_count() > budget_bits_ && strict_) {
    throw CongestViolation("message of " + std::to_string(m.bit_count()) +
                           " bits exceeds CONGEST budget of " +
                           std::to_string(budget_bits_));
  }
}

void Network::prepare_round_faults(std::uint64_t round, RoundFaults& rf) {
  const auto n = graph_->n();
  if (crashed_.size() != n) {
    crashed_.assign(n, 0);
    crashed_total_ = 0;
  }
  down_.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (crashed_[v] == 0 && crashed_total_ < faults_->max_crashes &&
        faults_->crashes_node(round, v)) {
      crashed_[v] = 1;
      ++crashed_total_;
      ++rf.crashes;
    }
    bool down = crashed_[v] != 0;
    if (!down && faults_->sleeps_node(round, v)) {
      down = true;
      ++rf.sleeps;
    }
    down_[v] = down ? 1 : 0;
  }
  metrics_.node_crashes += rf.crashes;
  metrics_.node_sleeps += rf.sleeps;
}

std::vector<Network::Inbox> Network::exchange_serial(
    const std::vector<Outbox>& outboxes, std::uint64_t round, RoundFaults& rf,
    std::size_t& round_max_bits) {
  const auto n = graph_->n();
  const bool faulty = faults_ != nullptr && faults_->any();
  std::vector<Inbox> inboxes(n);
  std::vector<NodeId> scratch;
  for (NodeId u = 0; u < n; ++u) {
    check_unique_destinations(outboxes[u], scratch);
    const bool sender_down = faulty && down_[u] != 0;
    for (const auto& [dest, msg] : outboxes[u]) {
      if (!graph_->has_edge(u, dest)) {
        throw std::invalid_argument(
            "Network::exchange: message to non-neighbor");
      }
      if (sender_down) continue;  // suppressed: never transmitted
      account(msg);
      round_max_bits = std::max(round_max_bits, msg.bit_count());
      if (faulty &&
          (down_[dest] != 0 || faults_->drops_message(round, u, dest))) {
        ++rf.dropped;
        continue;
      }
      if (faulty && faults_->corrupts_message(round, u, dest)) {
        Message c = msg;
        faults_->corrupt_payload(round, u, dest, c);
        ++rf.corrupted;
        inboxes[dest].emplace_back(u, std::move(c));
        continue;
      }
      inboxes[dest].emplace_back(u, msg);
    }
  }
  for (auto& inbox : inboxes) {
    std::sort(inbox.begin(), inbox.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }
  return inboxes;
}

std::vector<Network::Inbox> Network::exchange_parallel(
    const std::vector<Outbox>& outboxes, std::uint64_t round, RoundFaults& rf,
    std::size_t& round_max_bits) {
  const auto n = graph_->n();
  const bool faulty = faults_ != nullptr && faults_->any();
  // Per-shard staging: metrics and per-destination message counts. Shards
  // are contiguous ascending sender ranges, so concatenating them in shard
  // order reproduces the serial sender order exactly. Fault decisions are
  // pure in (seed, round, edge), so the counting pass and the write pass
  // resolve them identically without sharing state.
  struct Shard {
    RunMetrics metrics;
    std::size_t round_max_bits = 0;
    std::uint64_t dropped = 0;
    std::uint64_t corrupted = 0;
    std::vector<std::uint32_t> counts;  ///< then: write cursors per dest
  };
  const std::size_t lanes = std::min<std::size_t>(pool_->size(), n);
  std::vector<Shard> shards(lanes);

  // Drop decision shared by the counting and write passes (down receiver
  // first so the plan's drop stream is only consulted for live edges,
  // exactly as in the serial engine).
  auto lost = [&](NodeId u, NodeId dest) {
    return down_[dest] != 0 || faults_->drops_message(round, u, dest);
  };

  // Pass 1 (by sender): validate, account into the shard, count per dest.
  // Exception order matches serial: parallel_for rethrows the lowest chunk
  // = lowest sender, per-sender checks run in serial order within a chunk,
  // and the exception texts are position-independent.
  pool_->parallel_for(n, [&](std::size_t b, std::size_t e, std::size_t t) {
    Shard& sh = shards[t];
    sh.counts.assign(n, 0);
    std::vector<NodeId> scratch;
    for (std::size_t u = b; u < e; ++u) {
      check_unique_destinations(outboxes[u], scratch);
      const bool sender_down = faulty && down_[u] != 0;
      for (const auto& [dest, msg] : outboxes[u]) {
        if (!graph_->has_edge(static_cast<NodeId>(u), dest)) {
          throw std::invalid_argument(
              "Network::exchange: message to non-neighbor");
        }
        if (sender_down) continue;
        ++sh.metrics.messages;
        sh.metrics.total_bits += msg.bit_count();
        sh.metrics.max_message_bits =
            std::max(sh.metrics.max_message_bits, msg.bit_count());
        if (budget_bits_ != 0 && msg.bit_count() > budget_bits_) {
          ++sh.metrics.congest_violations;
          check_budget(msg);
        }
        sh.round_max_bits = std::max(sh.round_max_bits, msg.bit_count());
        if (faulty && lost(static_cast<NodeId>(u), dest)) {
          ++sh.dropped;
          continue;
        }
        if (faulty &&
            faults_->corrupts_message(round, static_cast<NodeId>(u), dest)) {
          ++sh.corrupted;
        }
        ++sh.counts[dest];
      }
    }
  });

  // Pass 2 (by destination): turn counts into shard start cursors and size
  // each inbox to its exact final length.
  std::vector<Inbox> inboxes(n);
  pool_->parallel_for(n, [&](std::size_t b, std::size_t e, std::size_t) {
    for (std::size_t dest = b; dest < e; ++dest) {
      std::uint32_t total = 0;
      for (auto& sh : shards) {
        const std::uint32_t c = sh.counts[dest];
        sh.counts[dest] = total;
        total += c;
      }
      inboxes[dest].resize(total);
    }
  });

  // Pass 3 (by sender, same sharding): write messages at the shard's
  // cursor — disjoint slots, and slot order equals serial insert order.
  // Re-resolves the (pure) fault decisions of pass 1.
  pool_->parallel_for(n, [&](std::size_t b, std::size_t e, std::size_t t) {
    Shard& sh = shards[t];
    for (std::size_t u = b; u < e; ++u) {
      if (faulty && down_[u] != 0) continue;
      for (const auto& [dest, msg] : outboxes[u]) {
        if (faulty && lost(static_cast<NodeId>(u), dest)) continue;
        auto& slot = inboxes[dest][sh.counts[dest]++];
        slot = {static_cast<NodeId>(u), msg};
        if (faulty &&
            faults_->corrupts_message(round, static_cast<NodeId>(u), dest)) {
          faults_->corrupt_payload(round, static_cast<NodeId>(u), dest,
                                   slot.second);
        }
      }
    }
  });

  // Pass 4 (by destination): the same sort over the same input permutation
  // as the serial engine.
  pool_->parallel_for(n, [&](std::size_t b, std::size_t e, std::size_t) {
    for (std::size_t dest = b; dest < e; ++dest) {
      std::sort(
          inboxes[dest].begin(), inboxes[dest].end(),
          [](const auto& a, const auto& b2) { return a.first < b2.first; });
    }
  });

  // Deterministic merge: all folds are sums / maxes, so the totals equal
  // the serial accounting regardless of shard boundaries.
  for (const Shard& sh : shards) {
    metrics_.messages += sh.metrics.messages;
    metrics_.total_bits += sh.metrics.total_bits;
    metrics_.max_message_bits =
        std::max(metrics_.max_message_bits, sh.metrics.max_message_bits);
    metrics_.congest_violations += sh.metrics.congest_violations;
    round_max_bits = std::max(round_max_bits, sh.round_max_bits);
    rf.dropped += sh.dropped;
    rf.corrupted += sh.corrupted;
  }
  return inboxes;
}

std::vector<Network::Inbox> Network::exchange(
    const std::vector<Outbox>& outboxes) {
  const auto n = graph_->n();
  if (outboxes.size() != n) {
    throw std::invalid_argument("Network::exchange: outbox count != n");
  }
  // The round index keying the fault schedule: silent rounds shift it, so a
  // plan addresses "the k-th round of the run", not "the k-th exchange".
  const std::uint64_t round = metrics_.rounds;
  ++metrics_.rounds;
  RoundFaults rf;
  if (faults_ != nullptr && faults_->any()) prepare_round_faults(round, rf);
  const std::uint64_t msgs_before = metrics_.messages;
  const std::uint64_t bits_before = metrics_.total_bits;
  std::size_t round_max_bits = 0;
  const std::uint64_t t0 = now_ns();
  std::vector<Inbox> inboxes =
      (pool_ != nullptr && pool_->size() > 1)
          ? exchange_parallel(outboxes, round, rf, round_max_bits)
          : exchange_serial(outboxes, round, rf, round_max_bits);
  metrics_.messages_dropped += rf.dropped;
  metrics_.messages_corrupted += rf.corrupted;
  const std::uint64_t wall_ns = (now_ns() - t0) + pending_compute_ns_;
  pending_compute_ns_ = 0;
  metrics_.wall_ns += wall_ns;
  if (trace_ != nullptr) {
    trace_->record_round(metrics_.messages - msgs_before,
                         metrics_.total_bits - bits_before, round_max_bits,
                         wall_ns, rf);
  }
  return inboxes;
}

std::vector<Network::Inbox> Network::exchange_broadcast(
    const std::vector<Message>& msgs, const std::vector<bool>* active) {
  const auto n = graph_->n();
  if (msgs.size() != n) {
    throw std::invalid_argument(
        "Network::exchange_broadcast: msgs count != n");
  }
  if (active != nullptr && active->size() != n) {
    throw std::invalid_argument(
        "Network::exchange_broadcast: active mask size != n");
  }
  std::vector<Outbox> outboxes(n);
  run_node_programs([&](NodeId u) {
    if (active != nullptr && !(*active)[u]) return;
    const auto nb = graph_->neighbors(u);
    outboxes[u].reserve(nb.size());
    for (NodeId v : nb) outboxes[u].emplace_back(v, msgs[u]);
  });
  return exchange(outboxes);
}

void Network::run_node_programs(const std::function<void(NodeId)>& fn) {
  const auto n = graph_->n();
  const std::uint64_t t0 = now_ns();
  if (pool_ != nullptr && pool_->size() > 1) {
    pool_->parallel_for(n,
                        [&](std::size_t b, std::size_t e, std::size_t) {
                          for (std::size_t v = b; v < e; ++v) {
                            fn(static_cast<NodeId>(v));
                          }
                        });
  } else {
    for (NodeId v = 0; v < n; ++v) fn(v);
  }
  pending_compute_ns_ += now_ns() - t0;
}

}  // namespace ldc
