#include "ldc/runtime/network.hpp"

#include <algorithm>
#include <string>

namespace ldc {

void Network::account(const Message& m) {
  ++metrics_.messages;
  metrics_.total_bits += m.bit_count();
  metrics_.max_message_bits =
      std::max(metrics_.max_message_bits, m.bit_count());
  if (budget_bits_ != 0 && m.bit_count() > budget_bits_) {
    ++metrics_.congest_violations;
    if (strict_) {
      throw CongestViolation("message of " + std::to_string(m.bit_count()) +
                             " bits exceeds CONGEST budget of " +
                             std::to_string(budget_bits_));
    }
  }
}

std::vector<Network::Inbox> Network::exchange(
    const std::vector<Outbox>& outboxes) {
  const auto n = graph_->n();
  if (outboxes.size() != n) {
    throw std::invalid_argument("Network::exchange: outbox count != n");
  }
  ++metrics_.rounds;
  const std::uint64_t msgs_before = metrics_.messages;
  const std::uint64_t bits_before = metrics_.total_bits;
  std::size_t round_max_bits = 0;
  std::vector<Inbox> inboxes(n);
  for (NodeId u = 0; u < n; ++u) {
    for (const auto& [dest, msg] : outboxes[u]) {
      if (!graph_->has_edge(u, dest)) {
        throw std::invalid_argument(
            "Network::exchange: message to non-neighbor");
      }
      account(msg);
      round_max_bits = std::max(round_max_bits, msg.bit_count());
      inboxes[dest].emplace_back(u, msg);
    }
  }
  for (auto& inbox : inboxes) {
    std::sort(inbox.begin(), inbox.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }
  if (trace_ != nullptr) {
    trace_->record_round(metrics_.messages - msgs_before,
                         metrics_.total_bits - bits_before, round_max_bits);
  }
  return inboxes;
}

std::vector<Network::Inbox> Network::exchange_broadcast(
    const std::vector<Message>& msgs, const std::vector<bool>* active) {
  const auto n = graph_->n();
  std::vector<Outbox> outboxes(n);
  for (NodeId u = 0; u < n; ++u) {
    if (active != nullptr && !(*active)[u]) continue;
    const auto nb = graph_->neighbors(u);
    outboxes[u].reserve(nb.size());
    for (NodeId v : nb) outboxes[u].emplace_back(v, msgs[u]);
  }
  return exchange(outboxes);
}

}  // namespace ldc
