// ShardCrew / ShardSet and the Engine::kSharded round bodies.
//
// The Network methods defined here mirror the serial engine's two-pass
// structure per shard: phase A (by source shard) validates, accounts, and
// counts, staging cross-shard survivors in (src, dst) batches; phase B (by
// destination shard, after the crew barrier) folds the batches in and
// fills each inbox walking source shards in ascending order. Because
// shards own contiguous ascending vertex ranges, that walk IS the serial
// sender order, so inbox bytes, metrics, trace rows, and fault decisions
// are byte-identical to kSerial/kParallel (the PRF fault decisions are
// pure in (seed, round, edge) and are simply re-resolved where needed).
#include "ldc/runtime/shard.hpp"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstdlib>
#include <string>

#include "ldc/runtime/network.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace ldc {
namespace {

/// Same contract (and exception) as the serial/parallel engines: checked
/// per sender before any of that sender's messages are validated.
void check_unique_destinations_sharded(const Network::Outbox& outbox,
                                       std::vector<NodeId>& scratch) {
  if (outbox.size() < 2) return;
  scratch.clear();
  for (const auto& [dest, msg] : outbox) scratch.push_back(dest);
  std::sort(scratch.begin(), scratch.end());
  if (std::adjacent_find(scratch.begin(), scratch.end()) != scratch.end()) {
    throw std::invalid_argument(
        "Network::exchange: duplicate destination in a sender's outbox");
  }
}

}  // namespace

// ---------------------------------------------------------------- crew --

ShardCrew::ShardCrew(std::size_t shards, bool pin) : pin_(pin) {
  errors_.resize(shards);
  workers_.reserve(shards);
  for (std::size_t k = 0; k < shards; ++k) {
    workers_.emplace_back([this, k] { worker_loop(k); });
  }
}

ShardCrew::~ShardCrew() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ShardCrew::worker_loop(std::size_t k) {
#if defined(__linux__)
  if (pin_) {
    const unsigned hw =
        std::max(1u, std::thread::hardware_concurrency());
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<int>(k % hw), &set);
    (void)pthread_setaffinity_np(pthread_self(), sizeof set, &set);
  }
#endif
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    try {
      (*job)(k);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      errors_[k] = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (--unfinished_ == 0) done_cv_.notify_all();
  }
}

void ShardCrew::run(const std::function<void(std::size_t)>& job) {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &job;
    std::fill(errors_.begin(), errors_.end(), std::exception_ptr{});
    unfinished_ = workers_.size();
    ++generation_;
  }
  work_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return unfinished_ == 0; });
    job_ = nullptr;
  }
  // Lowest shard = lowest sender range: matches the error order the other
  // engines guarantee.
  for (const auto& e : errors_) {
    if (e) std::rethrow_exception(e);
  }
}

std::size_t ShardCrew::default_shard_count() {
  const char* env = std::getenv("LDC_SHARDS");
  if (env == nullptr || *env == '\0') {
    return ThreadPool::default_thread_count();
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(env, &end, 10);
  if (errno != 0 || end == env || *end != '\0' || v < 1 ||
      v > static_cast<long long>(kMaxShards)) {
    throw std::invalid_argument(
        "LDC_SHARDS must be an integer in [1, " +
        std::to_string(kMaxShards) + "]; got \"" + env + "\"");
  }
  return static_cast<std::size_t>(v);
}

bool ShardCrew::pin_from_env() {
  const char* env = std::getenv("LDC_PIN");
  return env != nullptr && env[0] == '1' && env[1] == '\0';
}

// ----------------------------------------------------------- shard set --

ShardSet::ShardSet(const Graph& g, std::size_t shards, bool pin)
    : part_(Partition::degree_balanced(g, shards)),
      states_(part_.shards()),
      crew_(part_.shards(), pin) {
  const std::size_t k = states_.size();
  // Build each shard's state on its own worker so the topology, arena,
  // and batch buffers are allocated and touched by the thread that owns
  // them (first-touch NUMA placement).
  crew_.run([&](std::size_t i) {
    auto st = std::make_unique<ShardState>();
    st->topo.build(g, part_.begin(i), part_.end(i));
    st->outgoing.resize(k);
    states_[i] = std::move(st);
  });
  views_.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    ShardState& st = *states_[i];
    views_[i] = ShardView{&st.arena,          st.topo.xadj.data(),
                          st.topo.adj.data(), st.topo.ghosts.data(),
                          st.topo.vbegin,     st.topo.owned()};
  }
  map_ = ShardMap{views_.data(), part_.starts().data(), k};
}

// -------------------------------------------------- Network round bodies --

void Network::exchange_sharded(const std::vector<Outbox>& outboxes,
                               std::uint64_t round, RoundFaults& rf,
                               std::size_t& round_max_bits) {
  ShardSet& S = *shards_;
  const std::size_t K = S.size();
  const bool faulty = faults_ != nullptr && faults_->any();
  const std::uint64_t ep = arena_.epoch_;

  // Drop decision shared by both phases (down receiver first, exactly as
  // in the other engines).
  auto lost = [&](NodeId u, NodeId dest) {
    return down_[dest] != 0 || faults_->drops_message(round, u, dest);
  };

  // Phase A (by source shard): validate, account into the shard's staging
  // metrics, count locally-delivered survivors per local destination, and
  // stage each cross-shard survivor in the (src, dst) batch — nothing
  // touches another shard's arena before the barrier. Error and
  // strict-CONGEST throws surface from the lowest shard = lowest sender.
  S.crew_.run([&](std::size_t k) {
    ShardState& st = *S.states_[k];
    const NodeId b = st.topo.vbegin;
    const NodeId e = st.topo.vend;
    st.metrics = RunMetrics{};
    st.round_max_bits = 0;
    st.dropped = 0;
    st.corrupted = 0;
    st.traffic = ShardTraffic{};
    for (auto& batch : st.outgoing) batch.clear();
    MailArena::Lane& lane = st.arena.lane(0, st.topo.owned());
    for (NodeId u = b; u < e; ++u) {
      check_unique_destinations_sharded(outboxes[u], st.scratch);
      const bool sender_down = faulty && down_[u] != 0;
      for (const auto& [dest, msg] : outboxes[u]) {
        if (!graph_->has_edge(u, dest)) {
          throw std::invalid_argument(
              "Network::exchange: message to non-neighbor");
        }
        if (sender_down) continue;
        ++st.metrics.messages;
        st.metrics.total_bits += msg.bit_count();
        st.metrics.max_message_bits =
            std::max(st.metrics.max_message_bits, msg.bit_count());
        if (budget_bits_ != 0 && msg.bit_count() > budget_bits_) {
          ++st.metrics.congest_violations;
          check_budget(msg);
        }
        st.round_max_bits = std::max(st.round_max_bits, msg.bit_count());
        const bool remote = dest < b || dest >= e;
        if (remote) {
          ++st.traffic.messages;
          st.traffic.bits += msg.bit_count();
        }
        if (faulty && lost(u, dest)) {
          ++st.dropped;
          continue;
        }
        if (faulty && faults_->corrupts_message(round, u, dest)) {
          ++st.corrupted;
        }
        if (!remote) {
          lane.add_one(dest - b, ep);
        } else {
          st.outgoing[S.part_.shard_of(dest)].push_back(
              ShardBatchEntry{u, dest, msg});
        }
      }
    }
  });

  // Phase B (by destination shard): fold the staged batch counts into the
  // local lane, lay out the shard's CSR offsets, then fill walking source
  // shards in ascending order (own range inline at j == k) — contiguous
  // ascending shard ranges make that the serial sender order per inbox.
  // Corruption is applied here on the destination's own slot copy (CoW),
  // re-resolving the pure PRF decision counted in phase A.
  S.crew_.run([&](std::size_t k) {
    ShardState& st = *S.states_[k];
    MailArena& a = st.arena;
    const NodeId b = st.topo.vbegin;
    const NodeId e = st.topo.vend;
    const NodeId owned = st.topo.owned();
    MailArena::Lane& lane = a.lanes_[0];
    for (std::size_t j = 0; j < K; ++j) {
      if (j == k) continue;
      for (const ShardBatchEntry& s : S.states_[j]->outgoing[k]) {
        lane.add_one(s.dest - b, ep);
      }
    }
    if (a.offsets_.size() < static_cast<std::size_t>(owned) + 1) {
      a.offsets_.resize(static_cast<std::size_t>(owned) + 1);
    }
    std::uint32_t total = 0;
    for (NodeId lv = 0; lv < owned; ++lv) {
      a.offsets_[lv] = total;
      const std::uint32_t c = lane.at(lv, ep);
      lane.set(lv, ep, total);
      total += c;
    }
    a.offsets_[owned] = total;
    if (a.slots_.size() != total) a.slots_.resize(total);
    for (std::size_t j = 0; j < K; ++j) {
      if (j == k) {
        for (NodeId u = b; u < e; ++u) {
          if (faulty && down_[u] != 0) continue;
          for (const auto& [dest, msg] : outboxes[u]) {
            if (dest < b || dest >= e) continue;
            if (faulty && lost(u, dest)) continue;
            MailSlot& slot = a.slots_[lane.counts[dest - b]++];
            slot.first = u;
            slot.second = msg;
            if (faulty && faults_->corrupts_message(round, u, dest)) {
              faults_->corrupt_payload(round, u, dest, slot.second);
            }
          }
        }
        continue;
      }
      for (const ShardBatchEntry& s : S.states_[j]->outgoing[k]) {
        MailSlot& slot = a.slots_[lane.counts[s.dest - b]++];
        slot.first = s.sender;
        slot.second = s.msg;
        if (faulty && faults_->corrupts_message(round, s.sender, s.dest)) {
          faults_->corrupt_payload(round, s.sender, s.dest, slot.second);
        }
      }
    }
  });

  // Deterministic merge in ascending shard order: sums and maxes only, so
  // the totals equal the serial accounting regardless of boundaries.
  for (std::size_t k = 0; k < K; ++k) {
    const ShardState& st = *S.states_[k];
    metrics_.messages += st.metrics.messages;
    metrics_.total_bits += st.metrics.total_bits;
    metrics_.max_message_bits =
        std::max(metrics_.max_message_bits, st.metrics.max_message_bits);
    metrics_.congest_violations += st.metrics.congest_violations;
    round_max_bits = std::max(round_max_bits, st.round_max_bits);
    rf.dropped += st.dropped;
    rf.corrupted += st.corrupted;
    S.total_traffic_.messages += st.traffic.messages;
    S.total_traffic_.bits += st.traffic.bits;
  }
}

void Network::broadcast_fill_sharded(const std::vector<Message>& msgs,
                                     const std::vector<bool>* /*active*/,
                                     std::uint64_t round, RoundFaults& rf,
                                     bool all_live) {
  ShardSet& S = *shards_;
  const bool faulty = faults_ != nullptr && faults_->any();
  // Sender-side transmit flags were filled by the coordinator into the
  // master arena (read-only here); the per-shard fill below is
  // receiver-driven and writes only shard-owned pages.
  const MailArena& master = arena_;
  S.crew_.run([&](std::size_t k) {
    ShardState& st = *S.states_[k];
    MailArena& a = st.arena;
    const NodeId b = st.topo.vbegin;
    const NodeId e = st.topo.vend;
    const NodeId owned = st.topo.owned();
    st.dropped = 0;
    st.corrupted = 0;
    st.traffic = ShardTraffic{};
    if (a.offsets_.size() < static_cast<std::size_t>(owned) + 1) {
      a.offsets_.resize(static_cast<std::size_t>(owned) + 1);
    }
    std::uint32_t total = 0;
    for (NodeId v = b; v < e; ++v) {
      a.offsets_[v - b] = total;
      if (all_live) {
        total += static_cast<std::uint32_t>(graph_->degree(v));
        continue;
      }
      const bool receiver_down = faulty && down_[v] != 0;
      for (NodeId u : graph_->neighbors(v)) {
        if (master.transmits_[u] == 0) continue;
        if (faulty &&
            (receiver_down || faults_->drops_message(round, u, v))) {
          ++st.dropped;
          continue;
        }
        if (faulty && faults_->corrupts_message(round, u, v)) {
          ++st.corrupted;
        }
        ++total;
      }
    }
    a.offsets_[owned] = total;
    if (a.slots_.size() != total) a.slots_.resize(total);
    for (NodeId v = b; v < e; ++v) {
      std::uint32_t cur = a.offsets_[v - b];
      const bool receiver_down = !all_live && faulty && down_[v] != 0;
      for (NodeId u : graph_->neighbors(v)) {
        if (!all_live) {
          if (master.transmits_[u] == 0) continue;
          if (faulty &&
              (receiver_down || faults_->drops_message(round, u, v))) {
            continue;
          }
        }
        MailSlot& slot = a.slots_[cur++];
        slot.first = u;
        slot.second = msgs[u];
        if (u < b || u >= e) {
          ++st.traffic.messages;
          st.traffic.bits += msgs[u].bit_count();
        }
        if (!all_live && faulty && faults_->corrupts_message(round, u, v)) {
          faults_->corrupt_payload(round, u, v, slot.second);
        }
      }
    }
  });
  for (std::size_t k = 0; k < S.size(); ++k) {
    const ShardState& st = *S.states_[k];
    rf.dropped += st.dropped;
    rf.corrupted += st.corrupted;
    S.total_traffic_.messages += st.traffic.messages;
    S.total_traffic_.bits += st.traffic.bits;
  }
}

void Network::word_fill_sharded(const std::vector<std::uint64_t>& words,
                                std::size_t bits, std::uint64_t round,
                                RoundFaults& rf, bool all_live) {
  ShardSet& S = *shards_;
  const bool faulty = faults_ != nullptr && faults_->any();
  const MailArena& master = arena_;
  S.crew_.run([&](std::size_t k) {
    ShardState& st = *S.states_[k];
    MailArena& a = st.arena;
    const NodeId b = st.topo.vbegin;
    const NodeId e = st.topo.vend;
    const NodeId owned = st.topo.owned();
    st.dropped = 0;
    st.corrupted = 0;
    st.traffic = ShardTraffic{};
    if (all_live) {
      // Dense mode, shard-local: owned words indexed by local id plus a
      // snapshot of the halo words. Lanes read ONLY shard-owned pages
      // (words, halo, local CSR), and the snapshot is what pins the
      // ghost-staleness semantics: mutating the caller's words after the
      // exchange cannot leak into this round's view.
      if (a.words_.size() < owned) a.words_.resize(owned);
      std::copy(words.begin() + b, words.begin() + e, a.words_.begin());
      const std::size_t ng = st.topo.ghosts.size();
      if (a.ghost_words_.size() < ng) a.ghost_words_.resize(ng);
      for (std::size_t i = 0; i < ng; ++i) {
        a.ghost_words_[i] = words[st.topo.ghosts[i]];
      }
      st.traffic.messages = st.topo.ghost_edges;
      st.traffic.bits = st.topo.ghost_edges * bits;
      return;
    }
    // Sparse mode: the shard's own CSR of (sender, word) slots over local
    // destinations, mirroring the serial masked/faulty path.
    if (a.offsets_.size() < static_cast<std::size_t>(owned) + 1) {
      a.offsets_.resize(static_cast<std::size_t>(owned) + 1);
    }
    std::uint32_t total = 0;
    for (NodeId v = b; v < e; ++v) {
      a.offsets_[v - b] = total;
      const bool receiver_down = faulty && down_[v] != 0;
      for (NodeId u : graph_->neighbors(v)) {
        if (master.transmits_[u] == 0) continue;
        if (faulty &&
            (receiver_down || faults_->drops_message(round, u, v))) {
          ++st.dropped;
          continue;
        }
        if (faulty && faults_->corrupts_message(round, u, v)) {
          ++st.corrupted;
        }
        ++total;
      }
    }
    a.offsets_[owned] = total;
    if (a.word_slots_.size() != total) a.word_slots_.resize(total);
    for (NodeId v = b; v < e; ++v) {
      std::uint32_t cur = a.offsets_[v - b];
      const bool receiver_down = faulty && down_[v] != 0;
      for (NodeId u : graph_->neighbors(v)) {
        if (master.transmits_[u] == 0) continue;
        if (faulty &&
            (receiver_down || faults_->drops_message(round, u, v))) {
          continue;
        }
        WordSlot& slot = a.word_slots_[cur++];
        slot.sender = u;
        slot.value = words[u];
        if (u < b || u >= e) {
          ++st.traffic.messages;
          st.traffic.bits += bits;
        }
        if (faulty && faults_->corrupts_message(round, u, v)) {
          faults_->corrupt_word(round, u, v, slot.value, bits);
        }
      }
    }
  });
  for (std::size_t k = 0; k < S.size(); ++k) {
    const ShardState& st = *S.states_[k];
    rf.dropped += st.dropped;
    rf.corrupted += st.corrupted;
    S.total_traffic_.messages += st.traffic.messages;
    S.total_traffic_.bits += st.traffic.bits;
  }
}

}  // namespace ldc
