#include "ldc/runtime/trace.hpp"

#include <ostream>

#include "ldc/support/prf.hpp"

namespace ldc {

void Trace::record_round(std::uint64_t messages, std::uint64_t bits,
                         std::size_t max_message_bits,
                         std::uint64_t wall_ns) {
  Round r;
  r.index = rounds_.size();
  r.messages = messages;
  r.bits = bits;
  r.max_message_bits = max_message_bits;
  r.wall_ns = wall_ns;
  r.mark = current_mark_;
  rounds_.push_back(std::move(r));
}

void Trace::record_silent(std::uint64_t k) {
  for (std::uint64_t i = 0; i < k; ++i) record_round(0, 0, 0, 0);
}

std::uint64_t Trace::digest() const {
  std::uint64_t h = 0x1dc0ffee;
  for (const auto& r : rounds_) {
    h = hash_combine(h, r.messages);
    h = hash_combine(h, r.bits);
    h = hash_combine(h, r.max_message_bits);
  }
  return hash_combine(h, rounds_.size());
}

void Trace::print(std::ostream& os) const {
  std::string last_mark = "\x01";  // sentinel unequal to any real mark
  for (const auto& r : rounds_) {
    if (r.mark != last_mark) {
      os << "--- " << (r.mark.empty() ? "(unmarked)" : r.mark) << " ---\n";
      last_mark = r.mark;
    }
    os << "round " << r.index << ": " << r.messages << " msgs, " << r.bits
       << " bits (max " << r.max_message_bits << ")\n";
  }
}

}  // namespace ldc
