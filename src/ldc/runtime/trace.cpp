#include "ldc/runtime/trace.hpp"

#include <ostream>

#include "ldc/support/prf.hpp"

namespace ldc {

void Trace::record_round(std::uint64_t messages, std::uint64_t bits,
                         std::size_t max_message_bits, std::uint64_t wall_ns,
                         const RoundFaults& faults) {
  Round r;
  r.index = rounds_.size();
  r.messages = messages;
  r.bits = bits;
  r.max_message_bits = max_message_bits;
  r.wall_ns = wall_ns;
  r.faults = faults;
  r.mark = current_mark_;
  rounds_.push_back(std::move(r));
}

void Trace::record_silent(std::uint64_t k, std::uint64_t wall_ns) {
  for (std::uint64_t i = 0; i < k; ++i) {
    record_round(0, 0, 0, i == 0 ? wall_ns : 0);
  }
}

void Trace::record_absorbed(const RunMetrics& m) {
  if (m.rounds == 0) return;
  record_round(m.messages, m.total_bits, m.max_message_bits, m.wall_ns,
               RoundFaults{m.messages_dropped, m.messages_corrupted,
                           m.node_crashes, m.node_sleeps});
  record_silent(m.rounds - 1);
}

void Trace::append(const Trace& sub) {
  for (const auto& s : sub.rounds_) {
    Round r = s;
    r.index = rounds_.size();
    rounds_.push_back(std::move(r));
  }
}

void Trace::add_wall_ns(std::uint64_t wall_ns) {
  if (!rounds_.empty()) rounds_.back().wall_ns += wall_ns;
}

std::uint64_t Trace::digest() const {
  std::uint64_t h = 0x1dc0ffee;
  for (const auto& r : rounds_) {
    h = hash_combine(h, r.messages);
    h = hash_combine(h, r.bits);
    h = hash_combine(h, r.max_message_bits);
    if (r.faults.any()) {  // fault-free transcripts keep the legacy fold
      h = hash_combine(h, r.faults.dropped);
      h = hash_combine(h, r.faults.corrupted);
      h = hash_combine(h, r.faults.crashes);
      h = hash_combine(h, r.faults.sleeps);
      h = hash_combine(h, 0x0fau);  // domain-separate faulty rounds
    }
  }
  return hash_combine(h, rounds_.size());
}

void Trace::print(std::ostream& os) const {
  std::string last_mark = "\x01";  // sentinel unequal to any real mark
  for (const auto& r : rounds_) {
    if (r.mark != last_mark) {
      os << "--- " << (r.mark.empty() ? "(unmarked)" : r.mark) << " ---\n";
      last_mark = r.mark;
    }
    os << "round " << r.index << ": " << r.messages << " msgs, " << r.bits
       << " bits (max " << r.max_message_bits << ")";
    if (r.faults.any()) {
      os << " [faults: " << r.faults.dropped << " dropped, "
         << r.faults.corrupted << " corrupted, " << r.faults.crashes
         << " crashes, " << r.faults.sleeps << " sleeps]";
    }
    os << "\n";
  }
}

}  // namespace ldc
