// Deterministic fault injection for the round engine.
//
// The paper's algorithms assume a fault-free synchronous network; the repair
// module supplies the self-stabilizing counterpart. A FaultPlan closes the
// loop: it makes the *simulator itself* adversarial, so the recovery path
// can be exercised (and measured) against faults that happen during a run
// rather than only against post-hoc corrupted colorings.
//
// A plan is attached to a Network like a Trace (Network::attach_faults) and
// describes four fault processes, all driven by the keyed PRF in
// support/prf:
//
//  * drop    — a message u -> v sent in round r is lost in transit;
//  * corrupt — a delivered message has one payload bit flipped;
//  * crash   — node v halts permanently at round r (crash-stop as a
//              permanent omission fault: from round r on, everything v
//              sends and everything addressed to v is lost);
//  * sleep   — node v misses exactly round r (transient omission), then
//              resumes.
//
// Every decision is a pure function of (seed, round, edge/node) — never of
// engine, thread count, or iteration order — so a plan yields byte-identical
// inboxes, RunMetrics (including fault counters), and trace digests under
// kSerial and kParallel at any thread count. The cross-engine equivalence
// suite sweeps fault plans to lock this down.
//
// Accounting: a suppressed sender transmits nothing (no cost); a message
// lost by drop or by a down receiver is paid for by the sender (counted in
// messages/total_bits) and additionally counted in messages_dropped.
// Corruption preserves the payload length, so CONGEST accounting is
// unaffected. Contract violations (non-neighbor destination, duplicate
// destination) are programming errors, not faults: they throw even when the
// offending sender is down.
#pragma once

#include <cstdint>
#include <limits>

#include "ldc/graph/graph.hpp"
#include "ldc/runtime/message.hpp"

namespace ldc {

struct FaultPlan {
  std::uint64_t seed = 0;

  double drop_rate = 0.0;     ///< per message per round
  double corrupt_rate = 0.0;  ///< per delivered message per round
  double crash_rate = 0.0;    ///< per live node per round (permanent)
  double sleep_rate = 0.0;    ///< per live node per round (transient)

  /// Cap on the total number of crashed nodes (crash events beyond the cap
  /// are suppressed, in node order). Keeps crash-stop runs connected enough
  /// for recovery experiments.
  std::uint32_t max_crashes = std::numeric_limits<std::uint32_t>::max();

  bool any() const {
    return drop_rate > 0.0 || corrupt_rate > 0.0 || crash_rate > 0.0 ||
           sleep_rate > 0.0;
  }

  /// Message u -> v in round `round` is lost in transit.
  bool drops_message(std::uint64_t round, NodeId from, NodeId to) const;

  /// Message u -> v in round `round` is delivered with a flipped bit.
  bool corrupts_message(std::uint64_t round, NodeId from, NodeId to) const;

  /// Applies the deterministic corruption for (round, from, to) to `m`:
  /// flips one PRF-chosen payload bit (no-op on empty messages).
  void corrupt_payload(std::uint64_t round, NodeId from, NodeId to,
                       Message& m) const;

  /// Word-broadcast twin of corrupt_payload: flips the same PRF-chosen bit
  /// in a `width_bits`-bit payload carried as one word (no-op when
  /// width_bits == 0, matching the empty-message no-op). Because BitWriter
  /// packs a single bounded value LSB-first, bit k of the word IS bit k of
  /// the equivalent Message payload, so fused and unfused deliveries
  /// corrupt identically.
  void corrupt_word(std::uint64_t round, NodeId from, NodeId to,
                    std::uint64_t& word, std::size_t width_bits) const;

  /// Node v crashes at round `round` (before the max_crashes cap).
  bool crashes_node(std::uint64_t round, NodeId v) const;

  /// Node v sleeps through round `round`.
  bool sleeps_node(std::uint64_t round, NodeId v) const;
};

}  // namespace ldc
