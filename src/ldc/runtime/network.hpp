// Round-synchronous message-passing engine (LOCAL / CONGEST simulator).
//
// Algorithms are written in bulk-synchronous style: each call to exchange()
// is one communication round — every node may send one message to each
// neighbor, and receives its neighbors' messages afterwards. Node programs
// must derive a node's outbox only from that node's own state and previously
// received messages; the validators in ldc/coloring and the determinism
// tests enforce the observable consequences of that discipline.
//
// A bit budget models CONGEST: any message exceeding the budget is counted
// as a violation (and optionally throws in strict mode). Budget 0 means the
// LOCAL model (unbounded messages).
//
// Execution engines. The simulator has three engines producing
// byte-identical results (colors, metrics, trace digests) — the
// cross-engine equivalence suites in tests/test_parallel_equivalence.cpp
// and tests/test_sharded.cpp lock this down:
//
//  * kSerial (default): one thread walks all senders in node order.
//  * kParallel: senders are chunked across a ThreadPool in contiguous
//    node-order ranges; each chunk validates and accounts its messages into
//    per-chunk staging (counts + RunMetrics), and the chunks are merged in
//    chunk order. Because chunks are contiguous and ascending, the merged
//    inbox order equals the serial sender order exactly, so determinism is
//    independent of thread count and schedule. Per-node compute runs
//    through run_node_programs(), which fans node callbacks out over the
//    same pool (callbacks must only write state owned by their node).
//  * kSharded: the graph is partitioned into K contiguous vertex ranges;
//    each shard owns its range plus a read-only ghost halo, holds its own
//    MailArena, and runs on its own dedicated worker (fixed worker↔shard
//    binding, first-touch NUMA placement, optional LDC_PIN=1 core
//    pinning). Cross-shard messages are staged in per-(src, dst) batch
//    buffers and flushed once per round at the barrier; destination
//    shards fill inboxes walking source shards in ascending order, which
//    reproduces the serial sender order exactly (see DESIGN.md §11 and
//    shard.hpp). Cross-shard traffic is observable via
//    cross_shard_traffic(); it is deliberately NOT part of RunMetrics, so
//    metrics and digests stay engine-independent.
//  * kDist: the sharded engine's protocol taken across process
//    boundaries — each shard lives in its own worker process (`ldc_shard`)
//    and the per-(src, dst) batch buffers travel as length-prefixed,
//    digest-sealed frames over sockets. The coordinator side is a
//    DistBackend (src/ldc/dist/coordinator.hpp) attached via
//    attach_dist(); the determinism contract is identical (DESIGN.md
//    §12), and cross_shard_traffic() reports the same logical counters
//    the in-process sharded engine would.
//
// Thread count: an explicit set_engine() parameter, else the LDC_THREADS
// environment variable (or LDC_SHARDS for kSharded, strictly parsed), else
// hardware concurrency. One thread/shard reproduces the exact serial code
// path. The only engine-visible difference is wall time, which is recorded
// (metrics().wall_ns, Trace::Round::wall_ns) but excluded from digests and
// equivalence.
//
// Fault injection: an attached FaultPlan (attach_faults, mirroring
// attach_trace) makes rounds adversarial — seeded message drops and
// bit-flip corruption per edge, and crash/sleep schedules per node. Every
// fault decision is a pure function of (plan seed, round, edge/node), so
// faulty runs keep the full cross-engine equivalence guarantee; fault
// events are counted in RunMetrics and recorded per round in the attached
// Trace. See fault.hpp for the model and accounting rules.
//
// Error fidelity: both engines throw the same exception for the first
// offending sender in node order — duplicate destinations are rejected
// before any of that sender's messages are validated, then non-neighbor
// delivery and strict CONGEST violations surface in message order; metric
// values after a throw are unspecified under kParallel.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "ldc/graph/graph.hpp"
#include "ldc/runtime/fault.hpp"
#include "ldc/runtime/mail.hpp"
#include "ldc/runtime/message.hpp"
#include "ldc/runtime/metrics.hpp"
#include "ldc/runtime/shard.hpp"
#include "ldc/runtime/thread_pool.hpp"
#include "ldc/runtime/trace.hpp"

namespace ldc {

class CongestViolation : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class DistBackend;

class Network {
 public:
  /// One outgoing message: destination must be a neighbor of the sender.
  using Outbox = std::vector<MailSlot>;
  /// An owning inbox (what RoundMail::materialize() yields per node);
  /// deliveries themselves are returned as arena-backed RoundMail views.
  using Inbox = std::vector<MailSlot>;

  enum class Engine { kSerial, kParallel, kSharded, kDist };

  /// budget_bits == 0 => LOCAL model. strict => throw on budget violation.
  explicit Network(const Graph& g, std::size_t budget_bits = 0,
                   bool strict = false)
      : graph_(&g), budget_bits_(budget_bits), strict_(strict) {}

  const Graph& graph() const { return *graph_; }

  /// Selects the execution engine. For kParallel, threads == 0 resolves
  /// via LDC_THREADS / hardware concurrency
  /// (ThreadPool::default_thread_count()); for kSharded it is the shard
  /// count and resolves via LDC_SHARDS (strictly parsed — garbage throws
  /// std::invalid_argument) with the same fallback, clamped to n. A
  /// resolved count of 1 runs the serial code path. Results are
  /// engine-independent. kDist cannot be selected here: attach a backend
  /// with attach_dist() instead (set_engine(kDist) without one throws
  /// std::invalid_argument).
  void set_engine(Engine engine, std::size_t threads = 0);

  /// Attaches (or with nullptr detaches) the multi-process distributed
  /// backend and switches the engine to kDist (resp. back to kSerial).
  /// The backend is not owned and must outlive the attachment; bind()
  /// runs immediately so a partition/handshake failure surfaces here,
  /// not at the first round.
  void attach_dist(DistBackend* backend);

  Engine engine() const { return engine_; }

  /// Lanes the engine uses: the pool size under kParallel, the shard
  /// count under kSharded, the worker-process count under kDist, 1
  /// under kSerial.
  std::size_t threads() const;

  /// Cumulative cross-shard traffic under kSharded / kDist (zeros
  /// otherwise). Engine-private observability: not in RunMetrics, not
  /// digested. Under kDist these are the LOGICAL counters — identical
  /// to what the in-process sharded engine would report; physical wire
  /// bytes/frames are the backend's own wire_stats().
  ShardTraffic cross_shard_traffic() const;

  /// One synchronous round: delivers outboxes[u] (messages from u) and
  /// returns a view of the per-node inboxes, in ascending sender order.
  /// The view reads the Network-owned round arena and is invalidated by
  /// the next exchange()/exchange_broadcast() on this Network (stale access
  /// throws std::logic_error; call RoundMail::materialize() to keep
  /// deliveries across rounds). Destinations must be neighbors of the
  /// sender and unique per round; both engines enforce both preconditions
  /// with std::invalid_argument (duplicate destinations are checked per
  /// sender before that sender's messages are validated or delivered, so
  /// serial and parallel runs surface the same error). Uniqueness makes
  /// inbox order total — at most one message per sender per inbox — and
  /// both engines deliver in ascending sender order by construction, so no
  /// sort runs (a debug-build assertion guards the invariant).
  RoundMail exchange(const std::vector<Outbox>& outboxes);

  /// Convenience: every node with active[v] (or all nodes if active is
  /// null) broadcasts msgs[v] to all its neighbors. Both vectors must have
  /// one entry per node. This is a fast path, not a wrapper: no outboxes
  /// are materialized — the arena is filled receiver-side straight from the
  /// graph's CSR, and each delivered slot is one shared payload handle per
  /// live in-neighbor. Observable behavior (metrics, trace, faults, inbox
  /// contents/order, strict-CONGEST errors) is identical to building the
  /// equivalent outboxes and calling exchange(). The returned view obeys
  /// the same one-round lifetime as exchange().
  RoundMail exchange_broadcast(const std::vector<Message>& msgs,
                               const std::vector<bool>* active = nullptr);

  /// Fused fast path for the most common round shape: every live node
  /// broadcasts ONE bounded value — exactly what a
  /// `BitWriter::write_bounded(words[v], bound)` + exchange_broadcast round
  /// sends, but with no Message materialization and no per-edge slot fill
  /// on the all-live path (the arena stores one word per *sender*; lanes
  /// are synthesized from the graph CSR). Observable behavior — metrics,
  /// trace rows, fault decisions and corrupted bit positions, inbox
  /// contents/order, strict-CONGEST errors — is byte-identical to the
  /// equivalent exchange_broadcast round: each delivery is accounted at
  /// ceil_log2(bound+1) bits, and corruption flips the same PRF-chosen bit
  /// (BitWriter packs LSB-first, so word bit k == payload bit k). Every
  /// live sender's word must be <= bound; bound must be < 2^64-1. The
  /// returned view obeys the same one-round lifetime as exchange().
  WordMail exchange_broadcast_word(const std::vector<std::uint64_t>& words,
                                   std::uint64_t bound,
                                   const std::vector<bool>* active = nullptr);

  /// Evaluates fn(v) for every node, in parallel under kParallel. fn must
  /// only write state owned by node v (its own message slot, color, inbox
  /// decode target, ...) — shared reads are fine, shared writes are not.
  /// Wall time is attributed to the next recorded round. Exceptions
  /// propagate; the one of the smallest throwing node wins, as in a serial
  /// loop (though under kParallel other nodes' callbacks may already have
  /// run).
  void run_node_programs(const std::function<void(NodeId)>& fn);

  /// Accounts `k` silent rounds (structural rounds in which an algorithm
  /// phase passes without payload; kept so round counts match the paper's
  /// accounting even when a phase sends nothing). An attached Trace records
  /// k empty rounds so transcript length always equals metrics().rounds.
  /// Compute time accumulated by run_node_programs() since the last round
  /// is flushed into wall_ns here (attributed to the first silent round),
  /// so trailing compute phases are never silently dropped.
  void advance_rounds(std::uint64_t k) {
    if (k == 0) return;
    metrics_.rounds += k;
    const std::uint64_t wall = pending_compute_ns_;
    pending_compute_ns_ = 0;
    metrics_.wall_ns += wall;
    if (trace_ != nullptr) trace_->record_silent(k, wall);
  }

  /// Moves compute time still pending from run_node_programs() into
  /// metrics().wall_ns without accounting a round, attributing it to the
  /// last recorded trace round (if any). Call at the end of a run whose
  /// final phase computes without a subsequent exchange, so total wall time
  /// is conserved.
  void flush_compute_time() {
    if (pending_compute_ns_ == 0) return;
    metrics_.wall_ns += pending_compute_ns_;
    if (trace_ != nullptr) trace_->add_wall_ns(pending_compute_ns_);
    pending_compute_ns_ = 0;
  }

  /// Folds a sub-run's metrics into this network's (used when an algorithm
  /// phase executes on induced subgraphs whose traffic belongs to this
  /// network; the caller pre-aggregates parallel branches, with rounds =
  /// max across branches). An attached Trace records the sub-run's rounds
  /// so transcript length keeps matching metrics().rounds: pass the
  /// sub-run's trace to carry its per-round rows, or nullptr to record the
  /// aggregate (one row with the sub-run's traffic, then silent rounds).
  void absorb(const RunMetrics& m, const Trace* sub = nullptr) {
    metrics_.merge(m);
    if (trace_ == nullptr) return;
    if (sub != nullptr) {
      trace_->append(*sub);
    } else {
      trace_->record_absorbed(m);
    }
  }

  const RunMetrics& metrics() const { return metrics_; }

  std::size_t budget_bits() const { return budget_bits_; }

  /// Attaches a transcript recorder (not owned); every subsequent
  /// exchange() appends one Trace::Round. Pass nullptr to detach.
  void attach_trace(Trace* trace) { trace_ = trace; }

  /// Round-boundary hook, mirroring attach_trace/attach_faults: invoked at
  /// the top of every exchange()/exchange_broadcast() with the index of the
  /// round about to run, before any message is validated or delivered. The
  /// callback must not mutate the Network or any algorithm state (results
  /// must stay byte-identical with and without it); it may throw, which
  /// aborts the round before it is accounted — the cooperative-cancellation
  /// path the job service uses to honour deadlines and cancel requests.
  /// Pass an empty function to detach.
  void set_round_callback(std::function<void(std::uint64_t)> cb) {
    round_cb_ = std::move(cb);
  }

  /// The attached recorder (nullptr if none) — algorithms use it to mark
  /// their phases.
  Trace* trace() const { return trace_; }

  /// Convenience: mark the attached trace, if any.
  void mark(const char* label) {
    if (trace_ != nullptr) trace_->mark(label);
  }

  /// Attaches a fault plan (not owned); every subsequent exchange() applies
  /// its drop/corrupt/crash/sleep schedule, keyed by the round index.
  /// Attaching (or detaching with nullptr) resets accumulated crash state,
  /// so a recovery phase can run fault-free after an adversarial one.
  void attach_faults(const FaultPlan* plan) {
    faults_ = plan;
    crashed_.assign(graph_->n(), 0);
    crashed_total_ = 0;
  }

  /// The attached fault plan (nullptr if none).
  const FaultPlan* faults() const { return faults_; }

  /// True if node v has crashed under the attached plan so far.
  bool crashed(NodeId v) const {
    return v < crashed_.size() && crashed_[v] != 0;
  }

 private:
  friend class DistBackend;

  const Graph* graph_;
  std::size_t budget_bits_;
  bool strict_;
  RunMetrics metrics_;
  Trace* trace_ = nullptr;
  std::function<void(std::uint64_t)> round_cb_;  ///< round-boundary hook
  Engine engine_ = Engine::kSerial;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<ShardSet> shards_;  ///< non-null only under kSharded, K>1
  DistBackend* dist_ = nullptr;       ///< non-null only under kDist
  std::uint64_t pending_compute_ns_ = 0;  ///< run_node_programs time since
                                          ///< the last recorded round
  const FaultPlan* faults_ = nullptr;
  std::vector<char> crashed_;  ///< permanent crash-stop state per node
  std::vector<char> down_;     ///< crashed or asleep in the current round
  std::uint32_t crashed_total_ = 0;
  MailArena arena_;  ///< round-reused delivery storage behind RoundMail

  void account(const Message& m);
  /// Validates m against the CONGEST budget without touching metrics;
  /// throws under strict mode (the parallel engine accounts per shard).
  void check_budget(const Message& m) const;

  /// Evaluates the plan's node schedules for `round` (single-threaded, so
  /// crash-cap resolution is engine-independent): updates crashed_/down_,
  /// counts crash/sleep events into metrics_ and `rf`.
  void prepare_round_faults(std::uint64_t round, RoundFaults& rf);

  /// Engine bodies: fill arena_ (offsets + slots) for this round.
  void exchange_serial(const std::vector<Outbox>& outboxes,
                       std::uint64_t round, RoundFaults& rf,
                       std::size_t& round_max_bits);
  void exchange_parallel(const std::vector<Outbox>& outboxes,
                         std::uint64_t round, RoundFaults& rf,
                         std::size_t& round_max_bits);
  /// Sharded engine bodies (defined in shard.cpp): two-phase exchange with
  /// batched cross-shard delivery, and the per-shard broadcast/word fills.
  void exchange_sharded(const std::vector<Outbox>& outboxes,
                        std::uint64_t round, RoundFaults& rf,
                        std::size_t& round_max_bits);
  void broadcast_fill_sharded(const std::vector<Message>& msgs,
                              const std::vector<bool>* active,
                              std::uint64_t round, RoundFaults& rf,
                              bool all_live);
  void word_fill_sharded(const std::vector<std::uint64_t>& words,
                         std::size_t bits, std::uint64_t round,
                         RoundFaults& rf, bool all_live);
  /// Broadcast fast path body (both engines): bulk sender-side accounting,
  /// then receiver-driven arena fill over the graph CSR.
  void broadcast_fill(const std::vector<Message>& msgs,
                      const std::vector<bool>* active, std::uint64_t round,
                      RoundFaults& rf, std::size_t& round_max_bits);
  /// Shared round epilogue: fault counters, wall clock, trace row. Used by
  /// both the Message plane (seal_round) and the fused word plane.
  void finish_round(std::uint64_t msgs_before, std::uint64_t bits_before,
                    std::size_t round_max_bits, std::uint64_t t0,
                    const RoundFaults& rf);
  /// Message-plane epilogue: order check + finish_round + arena view.
  RoundMail seal_round(std::uint64_t msgs_before, std::uint64_t bits_before,
                       std::size_t round_max_bits, std::uint64_t t0,
                       const RoundFaults& rf);
  /// Debug-build check of the ascending-sender invariant that replaced the
  /// per-inbox sort.
  void debug_check_sorted() const;
};

/// Interface of the multi-process distributed engine (implemented by
/// dist::Coordinator in src/ldc/dist/). The runtime stays free of any
/// socket or process code: Network only dispatches the three round
/// shapes to the attached backend, which must fill the master arena with
/// the exact bytes the in-process engines would (the equivalence suites
/// in tests/test_dist.cpp enforce this).
///
/// Access to Network/MailArena internals is funneled through the
/// protected attorney accessors below, so implementations in other
/// subsystems never need friendship of their own.
class DistBackend {
 public:
  virtual ~DistBackend() = default;

  /// Worker-process count (the K of the partition).
  virtual std::size_t shards() const = 0;

  /// Cumulative LOGICAL cross-shard traffic — must equal what the
  /// in-process sharded engine's cross_shard_traffic() would report for
  /// the same run with the same K.
  virtual ShardTraffic traffic() const = 0;

 protected:
  friend class Network;

  /// Called by Network::attach_dist; partitions net.graph() and runs the
  /// assign handshake. Throwing here leaves the Network unchanged.
  virtual void bind(Network& net) = 0;

  /// Engine bodies, mirroring Network's *_sharded trio: fill the master
  /// arena (offsets + slots / words) for this round and merge per-shard
  /// staging into metrics in ascending shard order.
  virtual void exchange_dist(Network& net,
                             const std::vector<Network::Outbox>& outboxes,
                             std::uint64_t round, RoundFaults& rf,
                             std::size_t& round_max_bits) = 0;
  virtual void broadcast_fill_dist(Network& net,
                                   const std::vector<Message>& msgs,
                                   const std::vector<bool>* active,
                                   std::uint64_t round, RoundFaults& rf,
                                   bool all_live) = 0;
  virtual void word_fill_dist(Network& net,
                              const std::vector<std::uint64_t>& words,
                              std::size_t bits, std::uint64_t round,
                              RoundFaults& rf, bool all_live) = 0;

  // -------- attorney accessors (friendship does not flow to derived
  // classes, so everything a backend needs is exposed as a protected
  // static here) --------
  static const Graph& graph(const Network& n) { return *n.graph_; }
  static MailArena& arena(Network& n) { return n.arena_; }
  static RunMetrics& metrics(Network& n) { return n.metrics_; }
  static const std::vector<char>& down(const Network& n) { return n.down_; }
  static bool strict(const Network& n) { return n.strict_; }
  static std::size_t budget_bits(const Network& n) { return n.budget_bits_; }
  static const FaultPlan* faults(const Network& n) { return n.faults_; }

  static std::vector<std::uint32_t>& arena_offsets(MailArena& a) {
    return a.offsets_;
  }
  static std::vector<MailSlot>& arena_slots(MailArena& a) { return a.slots_; }
  static std::vector<std::uint64_t>& arena_words(MailArena& a) {
    return a.words_;
  }
  static std::vector<WordSlot>& arena_word_slots(MailArena& a) {
    return a.word_slots_;
  }
  static const std::vector<char>& arena_transmits(const MailArena& a) {
    return a.transmits_;
  }
};

inline std::size_t Network::threads() const {
  if (dist_ != nullptr) return dist_->shards();
  if (shards_ != nullptr) return shards_->size();
  return pool_ == nullptr ? 1 : pool_->size();
}

inline ShardTraffic Network::cross_shard_traffic() const {
  if (dist_ != nullptr) return dist_->traffic();
  return shards_ == nullptr ? ShardTraffic{} : shards_->traffic();
}

}  // namespace ldc
