// Round-synchronous message-passing engine (LOCAL / CONGEST simulator).
//
// Algorithms are written in bulk-synchronous style: each call to exchange()
// is one communication round — every node may send one message to each
// neighbor, and receives its neighbors' messages afterwards. Node programs
// must derive a node's outbox only from that node's own state and previously
// received messages; the validators in ldc/coloring and the determinism
// tests enforce the observable consequences of that discipline.
//
// A bit budget models CONGEST: any message exceeding the budget is counted
// as a violation (and optionally throws in strict mode). Budget 0 means the
// LOCAL model (unbounded messages).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "ldc/graph/graph.hpp"
#include "ldc/runtime/message.hpp"
#include "ldc/runtime/metrics.hpp"
#include "ldc/runtime/trace.hpp"

namespace ldc {

class CongestViolation : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Network {
 public:
  /// One outgoing message: destination must be a neighbor of the sender.
  using Outbox = std::vector<std::pair<NodeId, Message>>;
  /// One received message with its sender.
  using Inbox = std::vector<std::pair<NodeId, Message>>;

  /// budget_bits == 0 => LOCAL model. strict => throw on budget violation.
  explicit Network(const Graph& g, std::size_t budget_bits = 0,
                   bool strict = false)
      : graph_(&g), budget_bits_(budget_bits), strict_(strict) {}

  const Graph& graph() const { return *graph_; }

  /// One synchronous round: delivers outboxes[u] (messages from u) and
  /// returns per-node inboxes, sorted by sender. Destinations must be
  /// neighbors of the sender and unique per round.
  std::vector<Inbox> exchange(const std::vector<Outbox>& outboxes);

  /// Convenience: every node with active[v] (or all nodes if active is
  /// null) broadcasts msgs[v] to all its neighbors.
  std::vector<Inbox> exchange_broadcast(const std::vector<Message>& msgs,
                                        const std::vector<bool>* active =
                                            nullptr);

  /// Accounts `k` silent rounds (structural rounds in which an algorithm
  /// phase passes without payload; kept so round counts match the paper's
  /// accounting even when a phase sends nothing).
  void advance_rounds(std::uint64_t k) { metrics_.rounds += k; }

  /// Folds a sub-run's metrics into this network's (used when an algorithm
  /// phase executes on induced subgraphs whose traffic belongs to this
  /// network; the caller pre-aggregates parallel branches, with rounds =
  /// max across branches).
  void absorb(const RunMetrics& m) { metrics_.merge(m); }

  const RunMetrics& metrics() const { return metrics_; }

  std::size_t budget_bits() const { return budget_bits_; }

  /// Attaches a transcript recorder (not owned); every subsequent
  /// exchange() appends one Trace::Round. Pass nullptr to detach.
  void attach_trace(Trace* trace) { trace_ = trace; }

  /// The attached recorder (nullptr if none) — algorithms use it to mark
  /// their phases.
  Trace* trace() const { return trace_; }

  /// Convenience: mark the attached trace, if any.
  void mark(const char* label) {
    if (trace_ != nullptr) trace_->mark(label);
  }

 private:
  const Graph* graph_;
  std::size_t budget_bits_;
  bool strict_;
  RunMetrics metrics_;
  Trace* trace_ = nullptr;

  void account(const Message& m);
};

}  // namespace ldc
