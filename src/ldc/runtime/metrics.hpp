// Communication metrics collected by the Network engine.
//
// These are the paper's two cost measures: round complexity (synchronous
// rounds used) and message size (bits per message). Metrics are exact —
// every bit crossing an edge is accounted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>

namespace ldc {

struct RunMetrics {
  std::uint64_t rounds = 0;           ///< exchange() calls
  std::uint64_t messages = 0;         ///< non-empty messages delivered
  std::uint64_t total_bits = 0;       ///< sum of message sizes
  std::size_t max_message_bits = 0;   ///< largest single message
  std::uint64_t congest_violations = 0;  ///< messages over the bit budget

  /// Accumulates a sub-run (e.g. a subroutine's own Network).
  void merge(const RunMetrics& other);
};

std::ostream& operator<<(std::ostream& os, const RunMetrics& m);

}  // namespace ldc
