// Communication metrics collected by the Network engine.
//
// These are the paper's two cost measures: round complexity (synchronous
// rounds used) and message size (bits per message). Metrics are exact —
// every bit crossing an edge is accounted.
//
// wall_ns is the one observational (non-model) field: host wall-clock time
// spent simulating exchanges and node programs. It exists so engine
// speedups are measurable; it is excluded from determinism comparisons and
// trace digests, which cover the model-exact fields only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>

namespace ldc {

struct RunMetrics {
  std::uint64_t rounds = 0;           ///< exchange() calls
  std::uint64_t messages = 0;         ///< non-empty messages delivered
  std::uint64_t total_bits = 0;       ///< sum of message sizes
  std::size_t max_message_bits = 0;   ///< largest single message
  std::uint64_t congest_violations = 0;  ///< messages over the bit budget
  // Fault-injection events (zero unless a FaultPlan is attached). These are
  // model-exact: the attached plan fully determines them, so they take part
  // in cross-engine equivalence like every other communication field.
  std::uint64_t messages_dropped = 0;    ///< sent but lost (drop faults or
                                         ///< down receivers)
  std::uint64_t messages_corrupted = 0;  ///< delivered with flipped bits
  std::uint64_t node_crashes = 0;        ///< crash events (permanent)
  std::uint64_t node_sleeps = 0;         ///< node-rounds slept (transient)
  std::uint64_t wall_ns = 0;  ///< host time simulating (observational)

  /// Accumulates a sub-run (e.g. a subroutine's own Network).
  void merge(const RunMetrics& other);

  /// True when all model-exact fields match; wall_ns is ignored. This is
  /// the equivalence the cross-engine test suite asserts.
  bool same_communication(const RunMetrics& other) const;
};

std::ostream& operator<<(std::ostream& os, const RunMetrics& m);

}  // namespace ldc
