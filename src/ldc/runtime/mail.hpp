// Round-arena mailboxes: the zero-copy delivery plane of the simulator.
//
// Every exchange() delivers into a Network-owned MailArena — a CSR-style
// flat mailbox (per-destination slot offsets plus one flat array of
// (sender, Message) slots) whose buffers are reused round after round, so
// the steady state of a run performs no per-round heap allocation. The
// caller receives a RoundMail: a lightweight, read-only view over the
// arena. A RoundMail is invalidated by the next exchange() on the same
// Network (the arena is rewritten in place); stale access throws
// std::logic_error in every build type, so a call site that accidentally
// holds an inbox across rounds fails loudly instead of reading the next
// round's traffic. Callers that genuinely need delivered messages to
// outlive the round call materialize(), which is cheap: Message handles
// share refcounted payloads, so the copy is per-slot, not per-payload-word.
//
// Delivery order contract: within one inbox, slots are in strictly
// ascending sender order (each sender may send at most one message per
// destination per round). All engines produce this order by construction —
// the serial engine walks senders ascending, the parallel engine's chunks
// are contiguous ascending sender ranges written in chunk order, and the
// sharded engine fills each destination by walking source shards in
// ascending shard order (shards own contiguous ascending vertex ranges) —
// which is what lets the plane skip the per-inbox sort entirely (a
// debug-build assertion keeps the invariant honest).
//
// Under Engine::kSharded there is one MailArena per shard, indexed by
// *local* destination id, and the views carry a ShardMap that routes a
// global destination to its shard's arena. Freshness is still checked
// against the master (Network-owned) arena's epoch, which keeps advancing
// once per round regardless of engine.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "ldc/graph/graph.hpp"
#include "ldc/runtime/message.hpp"

namespace ldc {

class Network;
class RoundMail;
class WordMail;
class DistBackend;

/// One delivered message with its sender.
using MailSlot = std::pair<NodeId, Message>;

/// One delivered broadcast word with its sender (the fused-round plane).
struct WordSlot {
  NodeId sender;
  std::uint64_t value;
};

/// Network-owned storage for one round's deliveries, reused across rounds.
class MailArena {
 public:
  MailArena() = default;
  MailArena(const MailArena&) = delete;
  MailArena& operator=(const MailArena&) = delete;

  /// Monotone round stamp; every exchange() bumps it, invalidating the
  /// RoundMail views handed out for earlier rounds.
  std::uint64_t epoch() const { return epoch_; }

 private:
  friend class Network;
  friend class RoundMail;
  friend class WordMail;
  friend class DistBackend;  ///< attorney for src/ldc/dist/ (network.hpp)

  /// Per-destination counting scratch, epoch-stamped: an entry whose stamp
  /// is not the current epoch reads as zero, so sparse rounds never pay a
  /// dense O(n) clear (the fix for the per-round `counts.assign(n, 0)` the
  /// sharded engine used to do on every lane).
  struct Lane {
    std::vector<std::uint32_t> counts;
    std::vector<std::uint64_t> stamp;

    void ensure(std::size_t n) {
      if (counts.size() < n) {
        counts.resize(n, 0);
        stamp.resize(n, 0);
      }
    }
    std::uint32_t at(NodeId v, std::uint64_t e) const {
      return stamp[v] == e ? counts[v] : 0;
    }
    void add_one(NodeId v, std::uint64_t e) {
      if (stamp[v] != e) {
        stamp[v] = e;
        counts[v] = 0;
      }
      ++counts[v];
    }
    void set(NodeId v, std::uint64_t e, std::uint32_t value) {
      stamp[v] = e;
      counts[v] = value;
    }
  };

  Lane& lane(std::size_t i, std::size_t n) {
    if (lanes_.size() <= i) lanes_.resize(i + 1);
    lanes_[i].ensure(n);
    return lanes_[i];
  }

  std::vector<std::uint32_t> offsets_;  ///< n+1 per-destination slot offsets
  std::vector<MailSlot> slots_;         ///< flat (sender, message) slots
  std::vector<std::uint64_t> words_;    ///< fused dense mode: word per sender
  std::vector<WordSlot> word_slots_;    ///< fused sparse mode: CSR slots
  std::vector<std::uint64_t> ghost_words_;  ///< sharded dense: halo snapshot
  std::uint64_t epoch_ = 0;
  std::vector<Lane> lanes_;             ///< lane 0: serial; else per chunk
  std::vector<char> transmits_;         ///< broadcast: sender is live
  std::vector<std::size_t> sender_bits_;    ///< broadcast: payload size
  std::vector<NodeId> scratch_;             ///< duplicate-destination check
  std::vector<std::uint32_t> chunk_total_;  ///< parallel prefix partials
};

/// Internal routing tables for Engine::kSharded views (built by the
/// engine, owned by the Network's shard set; treat as opaque elsewhere).
/// One ShardView per shard: the shard's delivery arena (indexed by local
/// destination id) plus its local CSR so dense word lanes can be
/// synthesized entirely from shard-owned pages. Word/ghost storage is
/// always dereferenced through `arena` at access time — those vectors are
/// resized between rounds, so the view must not cache their data pointers.
struct ShardView {
  const MailArena* arena = nullptr;
  const std::uint64_t* xadj = nullptr;  ///< local row offsets (owned()+1)
  const std::uint32_t* adj = nullptr;   ///< local ids, global row order
  const NodeId* ghost_ids = nullptr;    ///< sorted global ids of the halo
  NodeId vbegin = 0;
  std::uint32_t owned = 0;
};

/// Maps a global vertex to its owning shard (contiguous ranges, so a
/// binary search over the K+1 boundaries).
struct ShardMap {
  const ShardView* shards = nullptr;
  const NodeId* starts = nullptr;  ///< K+1 ascending range boundaries
  std::size_t count = 0;

  std::size_t shard_of(NodeId v) const {
    std::size_t lo = 0;
    std::size_t hi = count - 1;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo + 1) / 2;
      if (starts[mid] <= v) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    return lo;
  }
};

/// Read-only view of one round's inboxes (see the file comment for the
/// lifetime and ordering contract).
class RoundMail {
 public:
  /// A contiguous span of one destination's delivered messages.
  class InboxSpan {
   public:
    using value_type = MailSlot;

    InboxSpan() = default;

    const MailSlot* begin() const { return begin_; }
    const MailSlot* end() const { return end_; }
    std::size_t size() const {
      return static_cast<std::size_t>(end_ - begin_);
    }
    bool empty() const { return begin_ == end_; }
    const MailSlot& operator[](std::size_t i) const { return begin_[i]; }
    const MailSlot& front() const { return *begin_; }
    const MailSlot& back() const { return *(end_ - 1); }

   private:
    friend class RoundMail;
    InboxSpan(const MailSlot* b, const MailSlot* e) : begin_(b), end_(e) {}

    const MailSlot* begin_ = nullptr;
    const MailSlot* end_ = nullptr;
  };

  /// Iterates the per-destination spans, so `for (const auto& inbox : mail)`
  /// visits every node's inbox in node order.
  class const_iterator {
   public:
    using value_type = InboxSpan;

    InboxSpan operator*() const { return (*mail_)[v_]; }
    const_iterator& operator++() {
      ++v_;
      return *this;
    }
    bool operator==(const const_iterator& o) const { return v_ == o.v_; }
    bool operator!=(const const_iterator& o) const { return v_ != o.v_; }

   private:
    friend class RoundMail;
    const_iterator(const RoundMail* mail, NodeId v) : mail_(mail), v_(v) {}

    const RoundMail* mail_;
    NodeId v_;
  };

  RoundMail() = default;

  /// Number of destinations (the graph's n).
  std::size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }

  /// Inbox of destination v; throws std::logic_error if this view was
  /// invalidated by a later exchange() on the owning Network.
  InboxSpan operator[](NodeId v) const {
    check_fresh();
    if (v >= n_) {
      throw std::out_of_range("RoundMail: destination out of range");
    }
    if (smap_ != nullptr) {
      const ShardView& sv = smap_->shards[smap_->shard_of(v)];
      const NodeId lv = v - sv.vbegin;
      const MailSlot* base = sv.arena->slots_.data();
      return InboxSpan(base + sv.arena->offsets_[lv],
                       base + sv.arena->offsets_[lv + 1]);
    }
    const MailSlot* base = arena_->slots_.data();
    return InboxSpan(base + arena_->offsets_[v],
                     base + arena_->offsets_[v + 1]);
  }

  const_iterator begin() const {
    check_fresh();
    return const_iterator(this, 0);
  }
  const_iterator end() const { return const_iterator(this, n_); }

  /// Owning copy of every inbox for callers that must hold deliveries
  /// across rounds. Cheap: Message copies share payloads.
  std::vector<std::vector<MailSlot>> materialize() const {
    check_fresh();
    std::vector<std::vector<MailSlot>> out(n_);
    for (NodeId v = 0; v < n_; ++v) {
      const InboxSpan s = (*this)[v];
      out[v].assign(s.begin(), s.end());
    }
    return out;
  }

 private:
  friend class Network;
  RoundMail(const MailArena* arena, std::uint32_t n)
      : arena_(arena), n_(n), epoch_(arena->epoch_) {}
  /// Sharded view: `arena` is the master arena (epoch source only);
  /// deliveries live in the per-shard arenas behind `smap`.
  RoundMail(const MailArena* arena, const ShardMap* smap, std::uint32_t n)
      : arena_(arena), smap_(smap), n_(n), epoch_(arena->epoch_) {}

  void check_fresh() const {
    if (arena_ == nullptr || arena_->epoch_ != epoch_) {
      throw std::logic_error(
          "RoundMail: view outlived its round (a later exchange() rewrote "
          "the arena; materialize() the inboxes to keep them)");
    }
  }

  const MailArena* arena_ = nullptr;
  const ShardMap* smap_ = nullptr;
  std::uint32_t n_ = 0;
  std::uint64_t epoch_ = 0;
};

/// Read-only view of one fused broadcast round's inboxes
/// (Network::exchange_broadcast_word): every delivery is one word, so no
/// per-edge Message slots exist. Two storage modes behind one interface:
///
///  * dense (the all-live fast path): the arena holds just one word per
///    *sender*; destination v's lane is synthesized on the fly from the
///    graph's sorted adjacency — O(n) storage and fill for an O(m) logical
///    round, which is where the fused path's speed comes from.
///  * sparse (mask and/or faults attached): a CSR of (sender, word) slots,
///    exactly like RoundMail but with a word payload.
///
/// Same lifetime contract as RoundMail: the next exchange on the owning
/// Network invalidates the view, and stale access throws std::logic_error.
/// Lane iteration yields WordSlots by value in ascending sender order.
class WordMail {
 public:
  /// One destination's delivered (sender, word) pairs.
  class Lane {
   public:
    using value_type = WordSlot;

    class const_iterator {
     public:
      using value_type = WordSlot;

      WordSlot operator*() const { return (*lane_)[i_]; }
      const_iterator& operator++() {
        ++i_;
        return *this;
      }
      bool operator==(const const_iterator& o) const { return i_ == o.i_; }
      bool operator!=(const const_iterator& o) const { return i_ != o.i_; }

     private:
      friend class Lane;
      const_iterator(const Lane* lane, std::size_t i) : lane_(lane), i_(i) {}

      const Lane* lane_;
      std::size_t i_;
    };

    Lane() = default;

    std::size_t size() const { return n_; }
    bool empty() const { return n_ == 0; }
    WordSlot operator[](std::size_t i) const {
      if (slots_ != nullptr) return slots_[i];
      if (lids_ != nullptr) {
        // Sharded dense mode: translate the local id, reading the owned
        // word or the shard's halo snapshot — both shard-local pages.
        const std::uint32_t lid = lids_[i];
        if (lid < owned_) return WordSlot{vbegin_ + lid, dense_[lid]};
        return WordSlot{ghost_ids_[lid - owned_],
                        ghost_words_[lid - owned_]};
      }
      const NodeId u = nbrs_[i];
      return WordSlot{u, dense_[u]};
    }
    WordSlot front() const { return (*this)[0]; }
    const_iterator begin() const { return const_iterator(this, 0); }
    const_iterator end() const { return const_iterator(this, n_); }

   private:
    friend class WordMail;
    Lane(const WordSlot* slots, std::size_t n) : slots_(slots), n_(n) {}
    Lane(const NodeId* nbrs, const std::uint64_t* dense, std::size_t n)
        : nbrs_(nbrs), dense_(dense), n_(n) {}
    Lane(const std::uint32_t* lids, const std::uint64_t* owned_words,
         const std::uint64_t* ghost_words, const NodeId* ghost_ids,
         NodeId vbegin, std::uint32_t owned, std::size_t n)
        : dense_(owned_words), lids_(lids), ghost_words_(ghost_words),
          ghost_ids_(ghost_ids), vbegin_(vbegin), owned_(owned), n_(n) {}

    const WordSlot* slots_ = nullptr;       ///< sparse mode
    const NodeId* nbrs_ = nullptr;          ///< dense mode: adjacency
    const std::uint64_t* dense_ = nullptr;  ///< dense: word per sender/lid
    const std::uint32_t* lids_ = nullptr;   ///< sharded dense: local row
    const std::uint64_t* ghost_words_ = nullptr;  ///< sharded dense: halo
    const NodeId* ghost_ids_ = nullptr;     ///< sharded dense: halo ids
    NodeId vbegin_ = 0;                     ///< sharded dense: range base
    std::uint32_t owned_ = 0;               ///< sharded dense: range width
    std::size_t n_ = 0;
  };

  WordMail() = default;

  /// Number of destinations (the graph's n).
  std::size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }

  /// Lane of destination v; throws std::logic_error if this view was
  /// invalidated by a later exchange on the owning Network.
  Lane operator[](NodeId v) const {
    check_fresh();
    if (v >= n_) {
      throw std::out_of_range("WordMail: destination out of range");
    }
    if (smap_ != nullptr) {
      const ShardView& sv = smap_->shards[smap_->shard_of(v)];
      const NodeId lv = v - sv.vbegin;
      if (dense_) {
        const std::uint64_t i0 = sv.xadj[lv];
        return Lane(sv.adj + i0, sv.arena->words_.data(),
                    sv.arena->ghost_words_.data(), sv.ghost_ids,
                    sv.vbegin, sv.owned,
                    static_cast<std::size_t>(sv.xadj[lv + 1] - i0));
      }
      return Lane(sv.arena->word_slots_.data() + sv.arena->offsets_[lv],
                  sv.arena->offsets_[lv + 1] - sv.arena->offsets_[lv]);
    }
    if (dense_) {
      const auto nb = graph_->neighbors(v);
      return Lane(nb.data(), arena_->words_.data(), nb.size());
    }
    return Lane(arena_->word_slots_.data() + arena_->offsets_[v],
                arena_->offsets_[v + 1] - arena_->offsets_[v]);
  }

 private:
  friend class Network;
  WordMail(const MailArena* arena, const Graph* graph, bool dense,
           std::uint32_t n)
      : arena_(arena), graph_(graph), dense_(dense), n_(n),
        epoch_(arena->epoch_) {}
  /// Sharded view: `arena` is the master arena (epoch source only).
  WordMail(const MailArena* arena, const ShardMap* smap, bool dense,
           std::uint32_t n)
      : arena_(arena), smap_(smap), dense_(dense), n_(n),
        epoch_(arena->epoch_) {}

  void check_fresh() const {
    if (arena_ == nullptr || arena_->epoch_ != epoch_) {
      throw std::logic_error(
          "WordMail: view outlived its round (a later exchange rewrote the "
          "arena; copy the words out to keep them)");
    }
  }

  const MailArena* arena_ = nullptr;
  const Graph* graph_ = nullptr;
  const ShardMap* smap_ = nullptr;
  bool dense_ = false;
  std::uint32_t n_ = 0;
  std::uint64_t epoch_ = 0;
};

}  // namespace ldc
