// Round-by-round transcript recording.
//
// A Trace subscribes to a Network and records, per round, how many
// messages and bits crossed each edge. Transcripts serve three purposes:
// (a) the determinism test suite compares digests of entire executions,
// (b) experiment harnesses can attribute traffic to algorithm phases via
// marks, and (c) users debugging an algorithm can dump a readable log.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "ldc/runtime/metrics.hpp"

namespace ldc {

/// Per-round fault events (all zero for fault-free rounds). Produced by the
/// Network's fault-injection layer; model-exact and digested like traffic.
struct RoundFaults {
  std::uint64_t dropped = 0;    ///< messages sent but lost this round
  std::uint64_t corrupted = 0;  ///< messages delivered with flipped bits
  std::uint64_t crashes = 0;    ///< nodes that crashed at this round
  std::uint64_t sleeps = 0;     ///< nodes asleep for this round

  bool any() const {
    return dropped != 0 || corrupted != 0 || crashes != 0 || sleeps != 0;
  }
};

class Trace {
 public:
  struct Round {
    std::uint64_t index = 0;       ///< round number within the run
    std::uint64_t messages = 0;
    std::uint64_t bits = 0;
    std::size_t max_message_bits = 0;
    std::uint64_t wall_ns = 0;     ///< host time simulating the round
                                   ///< (observational; not in digest())
    RoundFaults faults;            ///< fault events injected this round
    std::string mark;              ///< phase label active at this round
  };

  /// Labels subsequent rounds (e.g. "linial", "phase I"); sticky until the
  /// next mark.
  void mark(std::string label) { current_mark_ = std::move(label); }

  /// Records one round's aggregate (called by Network when attached).
  void record_round(std::uint64_t messages, std::uint64_t bits,
                    std::size_t max_message_bits, std::uint64_t wall_ns = 0,
                    const RoundFaults& faults = {});

  /// Records `k` silent rounds (no traffic) under the current mark — the
  /// Network::advance_rounds() counterpart, keeping the transcript length
  /// equal to the metrics' round count. `wall_ns` (compute time flushed by
  /// the silent phase) is attributed to the first of the k rounds.
  void record_silent(std::uint64_t k, std::uint64_t wall_ns = 0);

  /// Records an absorbed sub-run (Network::absorb() counterpart) as one
  /// round carrying the sub-run's aggregate traffic followed by
  /// m.rounds - 1 silent rounds, so transcript length keeps matching
  /// metrics().rounds and traffic sums stay conserved.
  void record_absorbed(const RunMetrics& m);

  /// Appends another trace's rounds (re-indexed, keeping their marks) —
  /// used to carry an absorbed sub-run's per-round rows.
  void append(const Trace& sub);

  /// Adds observational wall time to the most recent round, if any (the
  /// Network::flush_compute_time() counterpart).
  void add_wall_ns(std::uint64_t wall_ns);

  const std::vector<Round>& rounds() const { return rounds_; }

  /// Order-sensitive 64-bit digest of the whole transcript; equal digests
  /// across two runs certify identical communication behaviour.
  std::uint64_t digest() const;

  /// Readable dump, one line per round, grouped by mark.
  void print(std::ostream& os) const;

 private:
  std::vector<Round> rounds_;
  std::string current_mark_;
};

}  // namespace ldc
