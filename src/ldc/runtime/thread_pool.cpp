#include "ldc/runtime/thread_pool.hpp"

#include <cerrno>
#include <cstdlib>
#include <string>

namespace ldc {

std::size_t ThreadPool::default_thread_count() {
  // A pool lane is an OS thread: a value beyond this is a misconfiguration
  // (e.g. LDC_THREADS accidentally set to a node count), not a request.
  constexpr long kMaxThreads = 4096;
  if (const char* env = std::getenv("LDC_THREADS")) {
    char* end = nullptr;
    errno = 0;
    const long v = std::strtol(env, &end, 10);
    // Reject garbage, trailing junk, empty strings, 0, negatives, and
    // out-of-range values (strtol saturates with ERANGE on overflow) by
    // falling back to hardware concurrency instead of misconfiguring the
    // pool.
    if (errno == 0 && end != env && *end == '\0' && v >= 1 &&
        v <= kMaxThreads) {
      return static_cast<std::size_t>(v);
    }
  }
  // hardware_concurrency() can cost a syscall (sysconf / sched_getaffinity)
  // on some libstdc++ builds; the topology does not change mid-process, so
  // probe once. The env parse above stays per-call: tests flip LDC_THREADS.
  static const unsigned hw = [] {
    const unsigned probed = std::thread::hardware_concurrency();
    return probed == 0 ? 1u : probed;
  }();
  return hw;
}

ThreadPool::ThreadPool(std::size_t threads)
    : size_(threads == 0 ? default_thread_count() : threads) {
  // The caller participates in every batch, so size_ lanes need only
  // size_ - 1 workers; size 1 therefore runs fully inline.
  workers_.reserve(size_ - 1);
  for (std::size_t i = 0; i + 1 < size_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::drain_batch(std::unique_lock<std::mutex>& lock) {
  while (next_task_ < batch_->size()) {
    const std::size_t i = next_task_++;
    lock.unlock();
    std::exception_ptr err;
    try {
      (*batch_)[i]();
    } catch (...) {
      err = std::current_exception();
    }
    lock.lock();
    if (err) (*errors_)[i] = std::move(err);
    if (--unfinished_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  std::uint64_t seen = 0;
  while (true) {
    work_cv_.wait(lock, [&] {
      return stop_ || (batch_ != nullptr && generation_ != seen &&
                       next_task_ < batch_->size());
    });
    if (stop_) return;
    drain_batch(lock);
    seen = generation_;
  }
}

void ThreadPool::run_tasks(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  std::vector<std::exception_ptr> errors(tasks.size());
  {
    std::unique_lock<std::mutex> lock(mu_);
    batch_ = &tasks;
    errors_ = &errors;
    next_task_ = 0;
    unfinished_ = tasks.size();
    ++generation_;
    if (size_ > 1) {
      lock.unlock();
      work_cv_.notify_all();
      lock.lock();
    }
    // The caller is a lane too: claim tasks until the batch is exhausted,
    // then wait for workers still finishing theirs.
    drain_batch(lock);
    done_cv_.wait(lock, [&] { return unfinished_ == 0; });
    batch_ = nullptr;
    errors_ = nullptr;
  }
  // Rethrow the lowest-index failure: with index-ordered work this is the
  // same exception a serial loop would have surfaced first.
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

void ThreadPool::parallel_for(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (size_ == 1) {
    fn(0, n, 0);  // serial code path, no task plumbing
    return;
  }
  const std::size_t chunks = std::min(size_, n);
  const std::size_t per = n / chunks;
  const std::size_t extra = n % chunks;  // first `extra` chunks get +1
  std::vector<std::function<void()>> tasks;
  tasks.reserve(chunks);
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t end = begin + per + (c < extra ? 1 : 0);
    tasks.push_back([&fn, begin, end, c] { fn(begin, end, c); });
    begin = end;
  }
  run_tasks(std::move(tasks));
}

}  // namespace ldc
