// Sharded single-graph execution: the machinery behind Engine::kSharded.
//
// The graph is split into K contiguous vertex ranges (Partition); shard k
// owns its range plus a read-only ghost halo, holds its OWN MailArena
// (indexed by local destination id), and has its own dedicated worker
// thread in a ShardCrew. Unlike the ThreadPool — where any worker may
// claim any chunk — the worker↔shard binding is fixed for the crew's
// lifetime, which is what makes first-touch NUMA placement work: each
// shard's arena pages, local CSR, and halo snapshots are allocated and
// touched by the thread that will keep reading them (optionally pinned to
// a core via LDC_PIN=1).
//
// Cross-shard messages never touch another shard's arena mid-round: phase
// A stages each one in a per-(src shard, dst shard) batch buffer, and
// after the barrier phase B folds the batches in at the destination — K²
// bulk appends per round instead of per-edge contention. Determinism falls
// out of contiguity: destination shard k fills each inbox by walking
// source shards in ascending order (its own range inline at j == k), and
// since shard ranges are contiguous and ascending, that IS the serial
// sender order. The engine bodies live in shard.cpp as Network member
// functions; see DESIGN.md §11 for the full memory-model and determinism
// argument.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "ldc/graph/graph.hpp"
#include "ldc/graph/partition.hpp"
#include "ldc/runtime/mail.hpp"
#include "ldc/runtime/message.hpp"
#include "ldc/runtime/metrics.hpp"

namespace ldc {

/// Cross-shard traffic observed by the sharded engine. Engine-private by
/// design: these counters are NOT part of RunMetrics or the trace, so
/// digests and metrics stay byte-identical across engines; e20 reads them
/// through Network::cross_shard_traffic().
struct ShardTraffic {
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
};

/// K persistent workers with a fixed worker↔shard binding. run(job)
/// executes job(k) on worker k for every k and returns after all workers
/// finish (a full barrier); a throwing job is captured and the
/// lowest-shard exception is rethrown, matching the lowest-sender error
/// order of the other engines.
class ShardCrew {
 public:
  /// Spawns `shards` workers. With pin == true each worker k is pinned to
  /// core k mod hardware_concurrency (Linux only; a best-effort hint —
  /// failures are ignored).
  ShardCrew(std::size_t shards, bool pin);
  ~ShardCrew();

  ShardCrew(const ShardCrew&) = delete;
  ShardCrew& operator=(const ShardCrew&) = delete;

  std::size_t size() const { return workers_.size(); }

  void run(const std::function<void(std::size_t)>& job);

  /// Shard count to use when set_engine(kSharded, 0) is called: the
  /// LDC_SHARDS environment variable if set — rejected loudly
  /// (std::invalid_argument) when it is not an integer in [1, 1024],
  /// unlike LDC_THREADS' silent fallback, because a typo here silently
  /// changing the execution shape is exactly what the strict parse is for
  /// — else ThreadPool::default_thread_count().
  static std::size_t default_shard_count();

  /// True iff LDC_PIN=1: pin each shard worker to a core.
  static bool pin_from_env();

  static constexpr std::size_t kMaxShards = 1024;

 private:
  void worker_loop(std::size_t k);

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t unfinished_ = 0;
  bool stop_ = false;
  bool pin_ = false;
  std::vector<std::exception_ptr> errors_;
  std::vector<std::thread> workers_;
};

/// One cross-shard message staged in a (src shard, dst shard) batch
/// between phase A (sender side) and phase B (destination side).
struct ShardBatchEntry {
  NodeId sender;
  NodeId dest;
  Message msg;
};

/// Everything shard k owns: its topology (owned range + ghost halo +
/// local CSR), its delivery arena (local destination ids), per-round
/// staging for the deterministic merge, and the outgoing batch buffers.
/// Allocated and first-touched by worker k.
struct ShardState {
  ShardTopology topo;
  MailArena arena;

  // Per-round staging, merged on the coordinator in shard order.
  RunMetrics metrics;
  std::size_t round_max_bits = 0;
  std::uint64_t dropped = 0;
  std::uint64_t corrupted = 0;
  ShardTraffic traffic;

  std::vector<std::vector<ShardBatchEntry>> outgoing;  ///< [dst shard]
  std::vector<NodeId> scratch;  ///< duplicate-destination check
};

/// The Network-owned bundle: partition, per-shard states, the crew, and
/// the routing tables the sharded RoundMail/WordMail views read.
class ShardSet {
 public:
  ShardSet(const Graph& g, std::size_t shards, bool pin);

  std::size_t size() const { return states_.size(); }
  const Partition& partition() const { return part_; }
  const ShardTraffic& traffic() const { return total_traffic_; }

 private:
  friend class Network;

  Partition part_;
  std::vector<std::unique_ptr<ShardState>> states_;
  std::vector<ShardView> views_;  ///< stable storage behind map_
  ShardMap map_;
  ShardTraffic total_traffic_;  ///< cumulative across rounds
  ShardCrew crew_;              ///< last: joins before states_ die
};

}  // namespace ldc
