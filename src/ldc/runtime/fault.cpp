#include "ldc/runtime/fault.hpp"

#include "ldc/support/prf.hpp"

namespace ldc {
namespace {

// Domain-separation tags: each fault process reads its own PRF stream, so
// e.g. raising drop_rate never changes which messages get corrupted.
enum Stream : std::uint64_t {
  kDrop = 0xd301,
  kCorrupt = 0xc0fe,
  kCrash = 0xcafa,
  kSleep = 0x51ee,
};

std::uint64_t edge_key(std::uint64_t tag, std::uint64_t round, NodeId from,
                       NodeId to) {
  const std::uint64_t edge =
      (static_cast<std::uint64_t>(from) << 32) | static_cast<std::uint64_t>(to);
  return hash_combine(hash_combine(tag, round), edge);
}

std::uint64_t node_key(std::uint64_t tag, std::uint64_t round, NodeId v) {
  return hash_combine(hash_combine(tag, round), v);
}

// Bernoulli(rate) from one PRF draw. The comparison uses the top 53 bits as
// an exact integer-valued double, so the decision is bit-reproducible across
// compilers and never overflows a cast.
bool hit(std::uint64_t prf_value, double rate) {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  return static_cast<double>(prf_value >> 11) < rate * 0x1p53;
}

}  // namespace

bool FaultPlan::drops_message(std::uint64_t round, NodeId from,
                              NodeId to) const {
  return hit(Prf(seed).at(edge_key(kDrop, round, from, to)), drop_rate);
}

bool FaultPlan::corrupts_message(std::uint64_t round, NodeId from,
                                 NodeId to) const {
  return hit(Prf(seed).at(edge_key(kCorrupt, round, from, to)), corrupt_rate);
}

void FaultPlan::corrupt_payload(std::uint64_t round, NodeId from, NodeId to,
                                Message& m) const {
  if (m.empty()) return;
  const Prf prf(seed);
  const std::uint64_t key = edge_key(kCorrupt, round, from, to);
  // A different PRF index than the decision draw, reduced to a bit position.
  m.flip_bit(static_cast<std::size_t>(
      prf.at_below(hash_combine(key, 1), m.bit_count())));
}

void FaultPlan::corrupt_word(std::uint64_t round, NodeId from, NodeId to,
                             std::uint64_t& word,
                             std::size_t width_bits) const {
  if (width_bits == 0) return;
  const Prf prf(seed);
  const std::uint64_t key = edge_key(kCorrupt, round, from, to);
  // Same index and reduction as corrupt_payload, so the flipped position
  // matches the Message path bit for bit.
  word ^= std::uint64_t{1} << prf.at_below(hash_combine(key, 1), width_bits);
}

bool FaultPlan::crashes_node(std::uint64_t round, NodeId v) const {
  return hit(Prf(seed).at(node_key(kCrash, round, v)), crash_rate);
}

bool FaultPlan::sleeps_node(std::uint64_t round, NodeId v) const {
  return hit(Prf(seed).at(node_key(kSleep, round, v)), sleep_rate);
}

}  // namespace ldc
