// A network message: a cheap handle over an immutable, refcounted bit
// payload.
//
// The zero-copy message plane rests on this type: copying a Message — into
// an inbox slot, across a broadcast fan-out of Delta neighbors, between
// algorithm-side buffers — copies a shared_ptr, never the payload words.
// Payloads are logically immutable after Message::from(); the only mutation
// path is flip_bit() (fault-injection corruption), which is copy-on-write:
// a shared payload is cloned before the flip, so corrupting one delivered
// copy can never alias the sender's message or sibling deliveries. The
// refcount is atomic, making concurrent handle copies / destruction from
// the parallel engine's shards safe; mutating one *handle* from two threads
// is a race on the handle itself, exactly as for any other value type.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "ldc/support/bitio.hpp"

namespace ldc {

class Message {
 public:
  Message() = default;

  /// Captures the writer's payload (one allocation; writers are usually
  /// ephemeral). Every copy of the returned Message shares that payload.
  static Message from(const BitWriter& w) {
    Message m;
    if (w.bit_count() != 0 || !w.words().empty()) {
      m.payload_ = std::make_shared<Payload>(
          Payload{w.words(), w.bit_count()});
    }
    return m;
  }

  BitReader reader() const {
    if (payload_ == nullptr) return BitReader(&empty_words(), 0);
    return BitReader(&payload_->words, payload_->bits);
  }

  std::size_t bit_count() const {
    return payload_ == nullptr ? 0 : payload_->bits;
  }
  bool empty() const { return bit_count() == 0; }

  /// True when both handles share one payload block (zero-copy aliasing;
  /// used by the delivery tests — empty messages share nothing).
  bool shares_payload(const Message& other) const {
    return payload_ != nullptr && payload_ == other.payload_;
  }

  /// Flips payload bit `pos`; throws std::out_of_range when
  /// pos >= bit_count() (a silent flip would corrupt adjacent heap words).
  /// Fault-injection support: the runtime's corruption faults alter
  /// payloads while keeping the exact bit length (so CONGEST accounting is
  /// unaffected). Copy-on-write: a payload shared with other handles is
  /// cloned first, so only this handle observes the flip.
  void flip_bit(std::size_t pos) {
    if (payload_ == nullptr || pos >= payload_->bits) {
      throw std::out_of_range("Message::flip_bit: bit position " +
                              std::to_string(pos) + " >= bit count " +
                              std::to_string(bit_count()));
    }
    if (payload_.use_count() != 1) {
      payload_ = std::make_shared<Payload>(*payload_);
    }
    payload_->words[pos / 64] ^= std::uint64_t{1} << (pos % 64);
  }

 private:
  struct Payload {
    std::vector<std::uint64_t> words;
    std::size_t bits = 0;
  };

  static const std::vector<std::uint64_t>& empty_words() {
    static const std::vector<std::uint64_t> kEmpty;
    return kEmpty;
  }

  std::shared_ptr<Payload> payload_;
};

}  // namespace ldc
