// A network message: an exactly-sized bit payload.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "ldc/support/bitio.hpp"

namespace ldc {

class Message {
 public:
  Message() = default;

  /// Captures the writer's payload (copies; writers are usually ephemeral).
  static Message from(const BitWriter& w) {
    Message m;
    m.words_ = w.words();
    m.bits_ = w.bit_count();
    return m;
  }

  BitReader reader() const { return BitReader(&words_, bits_); }

  std::size_t bit_count() const { return bits_; }
  bool empty() const { return bits_ == 0; }

  /// Flips payload bit `pos` (pos < bit_count()). Fault-injection support:
  /// the runtime's corruption faults alter payloads in place while keeping
  /// the exact bit length (so CONGEST accounting is unaffected).
  void flip_bit(std::size_t pos) {
    words_[pos / 64] ^= std::uint64_t{1} << (pos % 64);
  }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t bits_ = 0;
};

}  // namespace ldc
