// Fixed-size worker pool for deterministic fork-join parallelism.
//
// The simulator's parallel engine (network.hpp) and the per-node compute
// driver need exactly one primitive: run a batch of independent tasks and
// block until all of them finished, rethrowing the first failure. Workers
// are started once and reused across batches, so per-round overhead is a
// mutex hand-off, not thread creation.
//
// Determinism contract: the pool never reorders observable results — tasks
// must write disjoint state, and batch completion is a full barrier. When a
// batch throws, the exception with the lowest task index is rethrown, so a
// contiguous index-ordered partition of work surfaces the same (first)
// error a serial loop would. A pool of size 1 executes every task inline on
// the calling thread: byte-for-byte the serial code path, no workers.
//
// The pool itself must be driven from one thread at a time (the simulator
// loop); tasks of one batch run concurrently, batches never overlap.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ldc {

class ThreadPool {
 public:
  /// threads == 0 resolves via default_thread_count(). A pool of size 1
  /// spawns no workers and runs everything inline.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of lanes a batch is split into (>= 1).
  std::size_t size() const { return size_; }

  /// Runs every task, blocks until all completed (reuse after the drain is
  /// fine). If tasks threw, rethrows the exception of the lowest index.
  void run_tasks(std::vector<std::function<void()>> tasks);

  /// Splits [0, n) into size() contiguous chunks and runs
  /// fn(begin, end, chunk) per chunk. fn must only touch per-index state.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t,
                                             std::size_t)>& fn);

  /// LDC_THREADS environment variable if set to >= 1, otherwise
  /// std::thread::hardware_concurrency(), otherwise 1.
  static std::size_t default_thread_count();

 private:
  std::size_t size_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;   ///< workers wait for a batch
  std::condition_variable done_cv_;   ///< caller waits for completion
  std::vector<std::function<void()>>* batch_ = nullptr;
  std::vector<std::exception_ptr>* errors_ = nullptr;
  std::size_t next_task_ = 0;      ///< next unclaimed index in *batch_
  std::size_t unfinished_ = 0;     ///< tasks not yet completed
  std::uint64_t generation_ = 0;   ///< bumped per batch (spurious-wake guard)
  bool stop_ = false;

  void worker_loop();
  /// Claims and runs tasks from the current batch until it is exhausted.
  void drain_batch(std::unique_lock<std::mutex>& lock);
};

}  // namespace ldc
