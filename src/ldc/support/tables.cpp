#include "ldc/support/tables.hpp"

#include <cassert>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace ldc {
namespace {

std::string render(const Table::Cell& c) {
  std::ostringstream os;
  std::visit(
      [&os](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, double>) {
          os << std::fixed << std::setprecision(3) << v;
        } else {
          os << v;
        }
      },
      c);
  return os.str();
}

}  // namespace

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {}

void Table::add_row(std::vector<Cell> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      r.push_back(render(row[c]));
      width[c] = std::max(width[c], r.back().size());
    }
    rendered.push_back(std::move(r));
  }
  os << "== " << title_ << " ==\n";
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(width[c]))
         << cells[c];
    }
    os << '\n';
  };
  line(headers_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& r : rendered) line(r);
  os << '\n';
}

}  // namespace ldc
