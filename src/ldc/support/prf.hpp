// Deterministic pseudo-random primitives.
//
// The library is deterministic end to end: every "random" choice is a pure
// function of an explicit 64-bit seed. Two primitives are provided:
//
//  * SplitMix64 — a tiny, fast sequential generator used for graph and
//    instance generation (workloads).
//  * Prf — a keyed pseudo-random function used by the MT20-style candidate
//    machinery, where the paper's zero-round argument requires that a node's
//    output be a pure function of its *type* (initial color, color list).
//    Prf(key).at(i) is stateless random access, so two nodes of equal type
//    compute identical candidate families without communication.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ldc {

/// splitmix64 (Steele, Lea, Flood) — sequential deterministic generator.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next();

  /// Uniform value in [0, bound); bound > 0. Uses rejection-free Lemire
  /// reduction (slight bias < 2^-32 is irrelevant for workload generation).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

 private:
  std::uint64_t state_;
};

/// Stateless keyed PRF: value = mix(key, index).
class Prf {
 public:
  explicit Prf(std::uint64_t key) : key_(key) {}

  std::uint64_t at(std::uint64_t index) const;

  /// PRF output reduced to [0, bound); bound > 0.
  std::uint64_t at_below(std::uint64_t index, std::uint64_t bound) const;

  std::uint64_t key() const { return key_; }

 private:
  std::uint64_t key_;
};

/// Combines two 64-bit values into a new PRF key (order-sensitive).
std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b);

/// Deterministic 64-bit fingerprint of a sequence (used to key candidate
/// families by a node's color list, i.e. its "type" in the paper's sense).
std::uint64_t fingerprint(std::span<const std::uint64_t> values);
std::uint64_t fingerprint(std::span<const std::uint32_t> values);

/// Deterministically samples `k` distinct indices from [0, universe) using
/// the PRF stream starting at `index0`. Requires k <= universe. Output is
/// sorted. Cost O(k log k) expected.
std::vector<std::uint64_t> sample_distinct(const Prf& prf,
                                           std::uint64_t index0,
                                           std::uint64_t universe,
                                           std::size_t k);

}  // namespace ldc
