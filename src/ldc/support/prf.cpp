#include "ldc/support/prf.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace ldc {
namespace {

constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;

constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t SplitMix64::next() {
  state_ += kGamma;
  return mix64(state_);
}

std::uint64_t SplitMix64::next_below(std::uint64_t bound) {
  assert(bound > 0);
  // 128-bit multiply-shift reduction.
  return static_cast<std::uint64_t>(
      (static_cast<__uint128_t>(next()) * bound) >> 64);
}

double SplitMix64::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t Prf::at(std::uint64_t index) const {
  return mix64(mix64(key_ + kGamma) ^ (index * kGamma + 0x243f6a8885a308d3ULL));
}

std::uint64_t Prf::at_below(std::uint64_t index, std::uint64_t bound) const {
  assert(bound > 0);
  return static_cast<std::uint64_t>(
      (static_cast<__uint128_t>(at(index)) * bound) >> 64);
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return mix64(a ^ (b + kGamma + (a << 6) + (a >> 2)));
}

std::uint64_t fingerprint(std::span<const std::uint64_t> values) {
  std::uint64_t h = 0x51ed270b0a4725a6ULL;
  for (std::uint64_t v : values) h = hash_combine(h, v);
  return hash_combine(h, values.size());
}

std::uint64_t fingerprint(std::span<const std::uint32_t> values) {
  std::uint64_t h = 0x7b1699a3bd9dd6d1ULL;
  for (std::uint32_t v : values) h = hash_combine(h, v);
  return hash_combine(h, values.size());
}

std::vector<std::uint64_t> sample_distinct(const Prf& prf,
                                           std::uint64_t index0,
                                           std::uint64_t universe,
                                           std::size_t k) {
  assert(k <= universe);
  std::vector<std::uint64_t> out;
  out.reserve(k);
  if (k == universe) {
    for (std::uint64_t i = 0; i < universe; ++i) out.push_back(i);
    return out;
  }
  // For dense samples, do a deterministic partial Fisher-Yates over an
  // explicit index array; for sparse samples, rejection-sample into a set.
  if (k * 2 >= universe) {
    std::vector<std::uint64_t> idx(universe);
    for (std::uint64_t i = 0; i < universe; ++i) idx[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      const std::uint64_t j =
          i + prf.at_below(index0 + i, universe - i);
      std::swap(idx[i], idx[j]);
    }
    out.assign(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k));
  } else {
    std::unordered_set<std::uint64_t> seen;
    std::uint64_t i = index0;
    while (seen.size() < k) {
      seen.insert(prf.at_below(i++, universe));
    }
    out.assign(seen.begin(), seen.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ldc
