#include "ldc/support/bitio.hpp"

#include <stdexcept>

#include "ldc/support/math.hpp"

namespace ldc {

void BitWriter::write(std::uint64_t value, int bits) {
  assert(bits >= 0 && bits <= 64);
  if (bits == 0) return;
  if (bits < 64) value &= (std::uint64_t{1} << bits) - 1;
  const std::size_t word = bit_count_ / 64;
  const int offset = static_cast<int>(bit_count_ % 64);
  if (word >= words_.size()) words_.push_back(0);
  words_[word] |= value << offset;
  const int spill = offset + bits - 64;
  if (spill > 0) words_.push_back(value >> (bits - spill));
  bit_count_ += static_cast<std::size_t>(bits);
}

void BitWriter::write_bounded(std::uint64_t value, std::uint64_t bound) {
  assert(value <= bound);
  write(value, ceil_log2(bound + 1));
}

void BitWriter::write_varint(std::uint64_t value) {
  // Unary length prefix followed by the value's payload bits.
  const int bits = (value == 0) ? 1 : ilog2(value) + 1;
  write(0, bits - 1);  // (bits-1) zero bits
  write(1, 1);         // terminator
  write(value, bits);
}

std::uint64_t BitReader::read(int bits) {
  assert(bits >= 0 && bits <= 64);
  if (pos_ + static_cast<std::size_t>(bits) > bit_count_) {
    // Overrun is a hard error in every build: decoders hitting it on a
    // corrupted payload (fault injection flips bits, which can derail
    // variable-length decodes) must get a catchable exception, not an
    // out-of-bounds read.
    throw std::out_of_range("BitReader: read past end of payload");
  }
  if (bits == 0) return 0;
  const std::size_t word = pos_ / 64;
  const int offset = static_cast<int>(pos_ % 64);
  std::uint64_t value = (*words_)[word] >> offset;
  const int spill = offset + bits - 64;
  if (spill > 0) value |= (*words_)[word + 1] << (bits - spill);
  if (bits < 64) value &= (std::uint64_t{1} << bits) - 1;
  pos_ += static_cast<std::size_t>(bits);
  return value;
}

std::uint64_t BitReader::read_bounded(std::uint64_t bound) {
  return read(ceil_log2(bound + 1));
}

std::uint64_t BitReader::read_varint() {
  int bits = 1;
  while (read(1) == 0) ++bits;
  return read(bits);
}

}  // namespace ldc
