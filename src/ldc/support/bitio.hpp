// Bit-granular message encoding.
//
// All simulated network messages are produced through BitWriter and consumed
// through BitReader so that the CONGEST bit accounting in ldc::runtime is
// exact: a message's size is the number of bits actually written, not a
// byte-padded approximation.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace ldc {

/// Append-only bit stream. Values are written little-endian within 64-bit
/// words. The writer never pads: bit_count() is the exact payload size.
class BitWriter {
 public:
  /// Writes the low `bits` bits of `value`. `bits` may be 0 (no-op) up to 64.
  void write(std::uint64_t value, int bits);

  /// Writes a non-negative integer known to fit in ceil_log2(bound+1) bits.
  void write_bounded(std::uint64_t value, std::uint64_t bound);

  /// Elias-gamma-style variable-length encoding for unbounded non-negative
  /// integers (used where the paper says "O(log x) bits").
  void write_varint(std::uint64_t value);

  /// Number of bits written so far.
  std::size_t bit_count() const { return bit_count_; }

  /// Underlying storage (last word partially filled).
  const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t bit_count_ = 0;
};

/// Sequential reader over a BitWriter's payload.
class BitReader {
 public:
  explicit BitReader(const BitWriter& w)
      : words_(&w.words()), bit_count_(w.bit_count()) {}
  BitReader(const std::vector<std::uint64_t>* words, std::size_t bit_count)
      : words_(words), bit_count_(bit_count) {}

  /// Reads `bits` bits; throws std::out_of_range on overrun (corrupted
  /// payloads can derail variable-length decodes, so the error must be
  /// catchable in every build).
  std::uint64_t read(int bits);

  /// Inverse of BitWriter::write_bounded.
  std::uint64_t read_bounded(std::uint64_t bound);

  /// Inverse of BitWriter::write_varint.
  std::uint64_t read_varint();

  /// Bits not yet consumed.
  std::size_t remaining() const { return bit_count_ - pos_; }

 private:
  const std::vector<std::uint64_t>* words_;
  std::size_t bit_count_;
  std::size_t pos_ = 0;
};

}  // namespace ldc
