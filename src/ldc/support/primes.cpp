#include "ldc/support/primes.hpp"

#include <cassert>

namespace ldc {

std::uint64_t mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  return static_cast<std::uint64_t>(
      (static_cast<__uint128_t>(a) * b) % m);
}

std::uint64_t powmod(std::uint64_t a, std::uint64_t e, std::uint64_t m) {
  assert(m > 0);
  std::uint64_t r = 1 % m;
  a %= m;
  while (e > 0) {
    if (e & 1) r = mulmod(r, a, m);
    a = mulmod(a, a, m);
    e >>= 1;
  }
  return r;
}

namespace {

// One Miller-Rabin round for witness a; n-1 = d * 2^s with d odd.
bool mr_round(std::uint64_t n, std::uint64_t a, std::uint64_t d, int s) {
  std::uint64_t x = powmod(a, d, n);
  if (x == 1 || x == n - 1) return true;
  for (int i = 1; i < s; ++i) {
    x = mulmod(x, x, n);
    if (x == n - 1) return true;
  }
  return false;
}

}  // namespace

bool is_prime(std::uint64_t n) {
  if (n < 2) return false;
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL,
                          19ULL, 23ULL, 29ULL, 31ULL, 37ULL}) {
    if (n % p == 0) return n == p;
  }
  std::uint64_t d = n - 1;
  int s = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++s;
  }
  // This witness set is deterministic for all n < 2^64 (Sinclair/Jaeschke).
  for (std::uint64_t a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL,
                          19ULL, 23ULL, 29ULL, 31ULL, 37ULL}) {
    if (!mr_round(n, a % n, d, s)) return false;
  }
  return true;
}

std::uint64_t next_prime(std::uint64_t n) {
  if (n <= 2) return 2;
  if ((n & 1) == 0) ++n;
  while (!is_prime(n)) n += 2;
  return n;
}

std::uint64_t poly_eval(std::span<const std::uint64_t> coeffs,
                        std::uint64_t x, std::uint64_t q) {
  std::uint64_t r = 0;
  for (std::size_t i = coeffs.size(); i-- > 0;) {
    r = (mulmod(r, x, q) + coeffs[i]) % q;
  }
  return r;
}

void to_base_q(std::uint64_t value, std::uint64_t q,
               std::span<std::uint64_t> out) {
  for (auto& digit : out) {
    digit = value % q;
    value /= q;
  }
  assert(value == 0 && "value does not fit in the requested digit count");
}

}  // namespace ldc
