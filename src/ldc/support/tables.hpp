// Minimal fixed-width table printer for the experiment harnesses in bench/.
// Every experiment binary prints one or more of these tables; EXPERIMENTS.md
// quotes them verbatim.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace ldc {

/// Column-aligned plain-text table.
class Table {
 public:
  using Cell = std::variant<std::string, std::int64_t, std::uint64_t, double>;

  Table(std::string title, std::vector<std::string> headers);

  /// Appends one row; must match the header arity.
  void add_row(std::vector<Cell> cells);

  /// Renders the title, header, separator and all rows.
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace ldc
