// Prime search and arithmetic over the prime field GF(q).
//
// Linial's O(log* n) coloring and its defective variant (Kuh09) are
// implemented via Reed-Solomon cover-free families: a color is a polynomial
// over GF(q), and the new color is an evaluation point/value pair. This
// module supplies the primality test, prime search, and polynomial
// evaluation those constructions need.
#pragma once

#include <cstdint>
#include <span>

namespace ldc {

/// Deterministic Miller-Rabin primality test, valid for all 64-bit inputs.
bool is_prime(std::uint64_t n);

/// Smallest prime >= n (n >= 0; next_prime(0) == next_prime(1) == 2).
std::uint64_t next_prime(std::uint64_t n);

/// (a * b) mod m without overflow.
std::uint64_t mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t m);

/// (a ^ e) mod m.
std::uint64_t powmod(std::uint64_t a, std::uint64_t e, std::uint64_t m);

/// Evaluates the polynomial with coefficient span `coeffs` (degree
/// coeffs.size()-1, coeffs[i] is the coefficient of x^i) at point x over
/// GF(q), by Horner's rule.
std::uint64_t poly_eval(std::span<const std::uint64_t> coeffs,
                        std::uint64_t x, std::uint64_t q);

/// Writes the base-q digits of `value` into out[0..digits), least significant
/// first. Requires value < q^digits.
void to_base_q(std::uint64_t value, std::uint64_t q,
               std::span<std::uint64_t> out);

}  // namespace ldc
