// Bit-packed color sets for the node-program hot loops.
//
// The candidate/conflict scans inside the defective-coloring node programs
// repeatedly answer two questions about a set of forbidden colors: "is x
// forbidden?" and "which of my candidate colors is not forbidden?". A
// PackedPalette answers both word-parallel: colors live as bits in 64-bit
// words, membership is one shift+mask, and the first-free scan is an
// AND-NOT over whole words followed by a ctz — 64 candidates per iteration
// instead of one binary search each.
//
// Reuse contract: a palette is meant to be built and torn down once per
// node per round, so clear() must not cost O(universe). Inserts record the
// words they touch in a dirty list; clear() zeroes only those words. A
// palette that is reset(universe)-ed once and then cycled insert*/clear
// performs no steady-state allocation (the dirty list's capacity is
// retained). It is scratch state: share one instance per thread, never
// across threads.
//
// Exactness: the migrated scans only use the palette for zero/non-zero
// membership tests (is there *any* conflict within the g-window of x?),
// never for multiplicity counts — the counting fallbacks in the callers
// keep the exact min-frequency semantics when every candidate conflicts.
// insert_window(c, g) sets the whole dilated interval [c-g, c+g] (clamped
// to the universe), so "x not in palette" == "no inserted color is within
// distance g of x" by construction.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ldc {

class PackedPalette {
 public:
  static constexpr std::uint64_t npos = ~std::uint64_t{0};

  PackedPalette() = default;
  explicit PackedPalette(std::uint64_t universe) { reset(universe); }

  /// Colors representable: [0, universe).
  std::uint64_t universe() const { return universe_; }

  /// Empties the set and (re)sizes it for colors < universe. Growing
  /// allocates; a same-or-smaller universe reuses the buffer.
  void reset(std::uint64_t universe) {
    clear();
    universe_ = universe;
    const std::size_t need =
        static_cast<std::size_t>((universe + 63) / 64);
    if (words_.size() < need) words_.resize(need, 0);
  }

  /// Removes every color; O(words actually touched since the last clear).
  void clear() {
    for (const std::uint32_t w : dirty_) words_[w] = 0;
    dirty_.clear();
  }

  bool empty() const { return dirty_.empty(); }

  void insert(std::uint64_t c) {
    if (c >= universe_) return;  // out-of-range colors constrain nothing
    touch(static_cast<std::uint32_t>(c >> 6));
    words_[c >> 6] |= std::uint64_t{1} << (c & 63);
  }

  /// Inserts the dilated window [c-g, c+g] clamped to [0, universe):
  /// afterwards contains(x) holds exactly for the x within distance g of
  /// some inserted center.
  void insert_window(std::uint64_t c, std::uint64_t g) {
    if (universe_ == 0) return;
    const std::uint64_t lo = c > g ? c - g : 0;
    if (lo >= universe_) return;
    std::uint64_t hi = c + g;  // inclusive
    if (hi < c || hi >= universe_) hi = universe_ - 1;
    std::uint32_t wlo = static_cast<std::uint32_t>(lo >> 6);
    const std::uint32_t whi = static_cast<std::uint32_t>(hi >> 6);
    // First and last word get partial masks; interior words are all-ones.
    for (std::uint32_t w = wlo; w <= whi; ++w) {
      std::uint64_t mask = ~std::uint64_t{0};
      if (w == wlo) mask &= ~std::uint64_t{0} << (lo & 63);
      if (w == whi) {
        const unsigned top = static_cast<unsigned>(hi & 63);
        mask &= top == 63 ? ~std::uint64_t{0}
                          : (std::uint64_t{1} << (top + 1)) - 1;
      }
      touch(w);
      words_[w] |= mask;
    }
  }

  bool contains(std::uint64_t c) const {
    if (c >= universe_) return false;
    return (words_[c >> 6] >> (c & 63)) & 1;
  }

  /// First element of `candidates` (in the span's own order) that is NOT in
  /// the set, or npos if every candidate is present. This is the scan shape
  /// of the migrated pickers: candidates are a node's list, the palette is
  /// its neighbors' (dilated) conflict union, and the first absentee is the
  /// earliest zero-conflict choice.
  template <typename T>
  std::uint64_t first_absent(std::span<const T> candidates) const {
    for (const T c : candidates) {
      if (!contains(static_cast<std::uint64_t>(c))) {
        return static_cast<std::uint64_t>(c);
      }
    }
    return npos;
  }

  /// Word-parallel variant: smallest color in `candidates` missing from
  /// this set (AND-NOT + ctz per word), or npos. Requires `candidates` to
  /// have been filled by ascending inserts (a sorted list), so its dirty
  /// word list is ascending; both palettes must share a universe.
  std::uint64_t first_absent(const PackedPalette& candidates) const {
    for (const std::uint32_t w : candidates.dirty_) {
      const std::uint64_t free = candidates.words_[w] & ~words_[w];
      if (free != 0) {
        return (static_cast<std::uint64_t>(w) << 6) +
               static_cast<std::uint64_t>(__builtin_ctzll(free));
      }
    }
    return npos;
  }

 private:
  void touch(std::uint32_t w) {
    if (words_[w] == 0) dirty_.push_back(w);
  }

  std::uint64_t universe_ = 0;
  std::vector<std::uint64_t> words_;
  std::vector<std::uint32_t> dirty_;  ///< indices of nonzero words
};

}  // namespace ldc
