// FNV-1a 64 — the byte-digest primitive shared by job digests, coloring
// digests (ldc/service) and the corpus store's section digests
// (ldc/storage). Header-only so the graph/storage layer can use it
// without depending on the service library.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ldc {

inline constexpr std::uint64_t kFnv1a64Seed = 14695981039346656037ull;

inline std::uint64_t fnv1a64_bytes(const void* data, std::size_t len,
                                   std::uint64_t seed = kFnv1a64Seed) {
  std::uint64_t h = seed;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace ldc
