// Small integer-math helpers used throughout the library.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <stdexcept>

namespace ldc {

/// Floor of log2(x); requires x >= 1.
constexpr int ilog2(std::uint64_t x) {
  assert(x >= 1);
  int r = 0;
  while (x >>= 1) ++r;
  return r;
}

/// Ceiling of log2(x); requires x >= 1. ceil_log2(1) == 0.
constexpr int ceil_log2(std::uint64_t x) {
  assert(x >= 1);
  return (x <= 1) ? 0 : ilog2(x - 1) + 1;
}

/// Ceiling division for non-negative integers.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  assert(b > 0);
  return (a + b - 1) / b;
}

/// Smallest power of two >= x; requires x >= 1.
constexpr std::uint64_t next_pow2(std::uint64_t x) {
  assert(x >= 1);
  return std::uint64_t{1} << ceil_log2(x);
}

/// Iterated logarithm: number of times log2 must be applied to reach <= 1.
/// log_star(1) == 0, log_star(2) == 1, log_star(4) == 2, log_star(16) == 3.
constexpr int log_star(std::uint64_t x) {
  int r = 0;
  while (x > 1) {
    x = static_cast<std::uint64_t>(ilog2(x));
    ++r;
  }
  return r;
}

/// x^e with saturation at uint64 max (used for parameter formulas that can
/// legitimately overflow; callers compare against practical caps).
constexpr std::uint64_t sat_pow(std::uint64_t x, unsigned e) {
  std::uint64_t r = 1;
  for (unsigned i = 0; i < e; ++i) {
    if (x != 0 && r > std::numeric_limits<std::uint64_t>::max() / x) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    r *= x;
  }
  return r;
}

/// Saturating multiply.
constexpr std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) {
  if (a != 0 && b > std::numeric_limits<std::uint64_t>::max() / a) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return a * b;
}

/// True iff a*b would wrap uint64 (exact, unlike comparing against the
/// saturated product).
constexpr bool mul_overflows(std::uint64_t a, std::uint64_t b) {
  return a != 0 && b > std::numeric_limits<std::uint64_t>::max() / a;
}

/// a*b, throwing std::overflow_error (tagged with `what`) on wraparound.
/// For parameter formulas whose results feed sizes/palettes, where a
/// silently wrapped value would pick an invalid configuration.
inline std::uint64_t checked_mul(std::uint64_t a, std::uint64_t b,
                                 const char* what) {
  if (mul_overflows(a, b)) throw std::overflow_error(what);
  return a * b;
}

}  // namespace ldc
