// Kuhn-Wattenhofer batched color reduction [KW06] for the standard
// (Delta+1)-coloring problem: a proper m-coloring is reduced to Delta+1
// colors in O(Delta * log(m / Delta)) rounds by halving the palette in
// parallel blocks of 2(Delta+1) colors, one upper color class per round.
#pragma once

#include <cstdint>

#include "ldc/coloring/instance.hpp"
#include "ldc/runtime/network.hpp"

namespace ldc::baselines {

struct KwResult {
  Coloring phi;            ///< proper coloring with < Delta+1 colors... ==
  std::uint64_t palette;   ///< Delta + 1
  std::uint32_t rounds = 0;
};

/// `initial` must be proper with colors < m. Output is a proper
/// (Delta+1)-coloring (colors in [0, Delta+1)).
KwResult kw_reduce(Network& net, const Coloring& initial, std::uint64_t m);

/// Linial from IDs, then kw_reduce: the O(Delta log Delta + log* n)
/// standard-coloring baseline of experiment E1.
KwResult linial_then_kw(Network& net);

}  // namespace ldc::baselines
