// One-class-per-round color reduction — the classic deterministic baseline
// (Szegedy-Vishwanathan / Kuhn-Wattenhofer style outer loop, [SV93, KW06]).
//
// Given a proper m-coloring, iterate c = m-1 .. 0: in round (m-1-c) every
// still-uncolored node whose initial color is c picks a color from its list
// not yet taken by any already-final neighbor (the class is an independent
// set, so simultaneous choices never clash). Solves (degree+1)-list
// coloring in exactly m rounds; combined with Linial this is the
// O(Delta^2 + log* n) baseline of experiment E1.
#pragma once

#include <cstdint>

#include "ldc/coloring/instance.hpp"
#include "ldc/runtime/network.hpp"

namespace ldc::baselines {

struct ReductionResult {
  Coloring phi;
  std::uint32_t rounds = 0;
};

/// `initial` must be a proper coloring with colors < m. The instance must
/// be a proper-list instance (defects 0) with |L_v| >= deg(v) + 1.
ReductionResult reduce_by_classes(Network& net, const LdcInstance& inst,
                                  const Coloring& initial, std::uint64_t m);

/// Convenience: Linial from IDs down to the O(Delta^2) fixpoint, then
/// reduce_by_classes. The standard O(Delta^2 + log* n) algorithm.
ReductionResult linial_then_reduce(Network& net, const LdcInstance& inst);

}  // namespace ldc::baselines
