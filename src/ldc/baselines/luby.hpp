// Randomized distributed list coloring in the style of Luby [Lub86] /
// Johansson: the standard O(log n)-round randomized CONGEST baseline the
// paper's related-work compares deterministic algorithms against.
//
// Each round every uncolored node proposes a color drawn (pseudo)uniformly
// from the still-available part of its list; a proposal is kept iff no
// neighbor proposed or holds the same color. Messages are O(log |C|) bits.
#pragma once

#include <cstdint>

#include "ldc/coloring/instance.hpp"
#include "ldc/runtime/network.hpp"

namespace ldc::baselines {

struct LubyOptions {
  std::uint64_t seed = 1;
  std::uint32_t max_rounds = 10000;
};

struct LubyResult {
  Coloring phi;
  std::uint32_t rounds = 0;
  bool success = false;  ///< everyone colored within max_rounds
};

/// Requires a proper-list instance (defects 0) with |L_v| >= deg(v) + 1.
LubyResult luby_list_coloring(Network& net, const LdcInstance& inst,
                              const LubyOptions& opt = {});

}  // namespace ldc::baselines
