#include "ldc/baselines/luby.hpp"

#include <vector>

#include "ldc/support/prf.hpp"

namespace ldc::baselines {

LubyResult luby_list_coloring(Network& net, const LdcInstance& inst,
                              const LubyOptions& opt) {
  const Graph& g = net.graph();
  const Prf prf(opt.seed);
  LubyResult res;
  res.phi.assign(g.n(), kUncolored);

  // Available colors per node (colors not yet fixed by a neighbor).
  std::vector<std::vector<Color>> avail(g.n());
  for (NodeId v = 0; v < g.n(); ++v) {
    avail[v].assign(inst.lists[v].colors.begin(),
                    inst.lists[v].colors.end());
  }

  const std::uint64_t space = inst.color_space;
  for (std::uint32_t round = 0; round < opt.max_rounds; ++round) {
    bool any_uncolored = false;
    for (NodeId v = 0; v < g.n(); ++v) {
      if (res.phi[v] == kUncolored) {
        any_uncolored = true;
        break;
      }
    }
    if (!any_uncolored) {
      res.success = true;
      break;
    }

    // Propose: uncolored nodes pick a pseudorandom available color;
    // colored nodes rebroadcast their fixed color so late joiners prune.
    // Wire format: 1 bit fixed? + color.
    std::vector<Color> proposal(g.n(), kUncolored);
    std::vector<Message> msgs(g.n());
    net.run_node_programs([&](NodeId v) {
      BitWriter w;
      if (res.phi[v] != kUncolored) {
        w.write(1, 1);
        w.write_bounded(res.phi[v], space - 1);
      } else if (avail[v].empty()) {
        // List exhausted: instance precondition violated; fail loudly by
        // never finishing (caller sees success = false).
        w.write(0, 1);
        w.write_bounded(0, space - 1);
      } else {
        proposal[v] = avail[v][prf.at_below(
            hash_combine(round, g.id(v)), avail[v].size())];
        w.write(0, 1);
        w.write_bounded(proposal[v], space - 1);
      }
      msgs[v] = Message::from(w);
    });
    const auto inboxes = net.exchange_broadcast(msgs);
    ++res.rounds;

    net.run_node_programs([&](NodeId v) {
      if (res.phi[v] != kUncolored || proposal[v] == kUncolored) return;
      bool keep = true;
      for (const auto& [u, m] : inboxes[v]) {
        (void)u;
        auto r = m.reader();
        const bool fixed = r.read(1) == 1;
        const Color c = static_cast<Color>(r.read_bounded(space - 1));
        if (c == proposal[v]) {
          // Conflict with a fixed neighbor always kills the proposal; a
          // conflicting simultaneous proposal kills both (symmetric rule).
          (void)fixed;
          keep = false;
          break;
        }
      }
      if (keep) {
        res.phi[v] = proposal[v];
        // Prune this color from neighbors' availability next round via the
        // fixed-color broadcast (handled below on receipt).
      }
    });
    // Prune availability with colors announced as *fixed* in this round's
    // messages (colors fixed this very round are only visible — and only
    // pruned — from the next round's rebroadcast). Safe in parallel: the
    // decision pass above writes phi[v] before this pass reads it, and the
    // two passes are separated by a pool barrier.
    net.run_node_programs([&](NodeId v) {
      if (res.phi[v] != kUncolored) return;
      for (const auto& [u, m] : inboxes[v]) {
        (void)u;
        auto r = m.reader();
        if (r.read(1) != 1) continue;  // not a fixed color
        const Color c = static_cast<Color>(r.read_bounded(space - 1));
        auto& a = avail[v];
        for (std::size_t i = 0; i < a.size(); ++i) {
          if (a[i] == c) {
            a.erase(a.begin() + static_cast<std::ptrdiff_t>(i));
            break;
          }
        }
      }
    });
  }
  return res;
}

}  // namespace ldc::baselines
