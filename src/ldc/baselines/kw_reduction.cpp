#include "ldc/baselines/kw_reduction.hpp"

#include <stdexcept>
#include <vector>

#include "ldc/linial/linial.hpp"
#include "ldc/support/math.hpp"

namespace ldc::baselines {

KwResult kw_reduce(Network& net, const Coloring& initial, std::uint64_t m) {
  const Graph& g = net.graph();
  const std::uint64_t B = static_cast<std::uint64_t>(g.max_degree()) + 1;
  KwResult res;
  res.phi = initial;
  res.palette = m;

  // Everyone learns its neighbors' current colors once; afterwards only
  // recoloring nodes announce updates.
  std::vector<std::vector<Color>> nb_color(g.n());
  {
    std::vector<Message> msgs(g.n());
    net.run_node_programs([&](NodeId v) {
      BitWriter w;
      w.write_bounded(res.phi[v], m - 1);
      msgs[v] = Message::from(w);
    });
    const auto in = net.exchange_broadcast(msgs);
    ++res.rounds;
    net.run_node_programs([&](NodeId v) {
      nb_color[v].resize(g.degree(v));
      for (const auto& [u, msg] : in[v]) {
        auto r = msg.reader();
        nb_color[v][g.neighbor_index(v, u)] =
            static_cast<Color>(r.read_bounded(m - 1));
      }
    });
  }

  while (res.palette > B) {
    // One halving pass: blocks of 2B colors; upper half recolors into the
    // lower half, one upper class offset per round.
    for (std::uint64_t off = 0; off < B; ++off) {
      std::vector<Message> msgs(g.n());
      std::vector<bool> active(g.n(), false);
      std::vector<Color> next = res.phi;
      // Parallel pass picks colors into `recolor`; vector<bool> writes are
      // not per-element thread-safe, so the mask is set serially below.
      std::vector<Color> recolor(g.n(), kUncolored);
      net.run_node_programs([&](NodeId v) {
        const std::uint64_t c = res.phi[v];
        const std::uint64_t block = c / (2 * B);
        if (c % (2 * B) != B + off) return;  // not this round's class
        // Pick a free color in [2*block*B, 2*block*B + B).
        const std::uint64_t lo = 2 * block * B;
        Color chosen = kUncolored;
        for (std::uint64_t t = lo; t < lo + B; ++t) {
          bool taken = false;
          for (Color cu : nb_color[v]) {
            if (cu == t) {
              taken = true;
              break;
            }
          }
          if (!taken) {
            chosen = static_cast<Color>(t);
            break;
          }
        }
        if (chosen == kUncolored) {
          throw std::logic_error("kw_reduce: no free color in block");
        }
        recolor[v] = chosen;
        BitWriter w;
        w.write_bounded(chosen, res.palette - 1);
        msgs[v] = Message::from(w);
      });
      for (NodeId v = 0; v < g.n(); ++v) {
        if (recolor[v] == kUncolored) continue;
        next[v] = recolor[v];
        active[v] = true;
      }
      const auto in = net.exchange_broadcast(msgs, &active);
      ++res.rounds;
      net.run_node_programs([&](NodeId v) {
        for (const auto& [u, msg] : in[v]) {
          auto r = msg.reader();
          nb_color[v][g.neighbor_index(v, u)] =
              static_cast<Color>(r.read_bounded(res.palette - 1));
        }
      });
      res.phi = std::move(next);
    }
    // Renumber: block k's lower half [2kB, 2kB+B) -> [kB, kB+B).
    auto renumber = [B](Color c) {
      const std::uint64_t block = c / (2 * B);
      return static_cast<Color>(block * B + (c % (2 * B)));
    };
    net.run_node_programs([&](NodeId v) {
      res.phi[v] = renumber(res.phi[v]);
      for (auto& c : nb_color[v]) c = renumber(c);
    });
    res.palette = ceil_div(res.palette, 2 * B) * B;
  }
  return res;
}

KwResult linial_then_kw(Network& net) {
  const linial::Result lin = linial::color(net);
  KwResult res = kw_reduce(net, lin.phi, lin.palette);
  res.rounds += lin.rounds;
  return res;
}

}  // namespace ldc::baselines
