#include "ldc/baselines/greedy.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

namespace ldc::baselines {

std::optional<Coloring> greedy_list_coloring(const LdcInstance& inst) {
  inst.check();
  const Graph& g = *inst.graph;
  Coloring phi(g.n(), kUncolored);
  // Visit in increasing id order (deterministic).
  std::vector<NodeId> order(g.n());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&g](NodeId a, NodeId b) { return g.id(a) < g.id(b); });
  for (NodeId v : order) {
    Color chosen = kUncolored;
    for (Color c : inst.lists[v].colors) {
      bool taken = false;
      for (NodeId u : g.neighbors(v)) {
        if (phi[u] == c) {
          taken = true;
          break;
        }
      }
      if (!taken) {
        chosen = c;
        break;
      }
    }
    if (chosen == kUncolored) return std::nullopt;
    phi[v] = chosen;
  }
  return phi;
}

}  // namespace ldc::baselines
