#include "ldc/baselines/color_reduction.hpp"

#include <stdexcept>
#include <vector>

#include "ldc/linial/linial.hpp"

namespace ldc::baselines {

ReductionResult reduce_by_classes(Network& net, const LdcInstance& inst,
                                  const Coloring& initial, std::uint64_t m) {
  const Graph& g = net.graph();
  ReductionResult res;
  res.phi.assign(g.n(), kUncolored);
  const std::uint64_t space = inst.color_space;

  // Tracks, per node, which list colors are taken by finalized neighbors.
  std::vector<std::vector<bool>> taken(g.n());
  for (NodeId v = 0; v < g.n(); ++v) {
    taken[v].assign(inst.lists[v].size(), false);
  }

  for (std::uint64_t cls = m; cls-- > 0;) {
    // Nodes of initial color `cls` finalize and broadcast their choice.
    std::vector<Message> msgs(g.n());
    std::vector<bool> active(g.n(), false);
    for (NodeId v = 0; v < g.n(); ++v) {
      if (initial[v] != cls) continue;
      Color chosen = kUncolored;
      for (std::size_t i = 0; i < inst.lists[v].size(); ++i) {
        if (!taken[v][i]) {
          chosen = inst.lists[v].colors[i];
          break;
        }
      }
      if (chosen == kUncolored) {
        throw std::invalid_argument(
            "reduce_by_classes: node ran out of list colors (lists must "
            "have size >= deg+1)");
      }
      res.phi[v] = chosen;
      active[v] = true;
      BitWriter w;
      w.write_bounded(chosen, space - 1);
      msgs[v] = Message::from(w);
    }
    net.exchange_broadcast(msgs, &active);
    ++res.rounds;
    // Receivers mark the announced colors as taken.
    for (NodeId v = 0; v < g.n(); ++v) {
      if (!active[v]) continue;
      for (NodeId u : g.neighbors(v)) {
        const std::size_t i = inst.lists[u].find(res.phi[v]);
        if (i != inst.lists[u].size()) taken[u][i] = true;
      }
    }
  }
  return res;
}

ReductionResult linial_then_reduce(Network& net, const LdcInstance& inst) {
  const linial::Result lin = linial::color(net);
  ReductionResult res =
      reduce_by_classes(net, inst, lin.phi, lin.palette);
  res.rounds += lin.rounds;
  return res;
}

}  // namespace ldc::baselines
