// Centralized sequential greedy list coloring — ground truth baseline.
//
// Valid for proper list coloring instances (all defects 0) whose lists
// satisfy |L_v| > deg(v) conflicts-ahead: visiting nodes in a fixed order
// and taking the first color unused by already-colored neighbors always
// succeeds when |L_v| >= deg(v) + 1 (the classic argument the paper's
// introduction recalls). Not distributed; used as the color-count/quality
// reference in the experiment suite.
#pragma once

#include <optional>

#include "ldc/coloring/instance.hpp"

namespace ldc::baselines {

/// First-fit greedy in node-id order. Returns std::nullopt if some node
/// runs out of colors (possible only when lists are shorter than deg+1 or
/// defects are nonzero — use sequential::solve_list_defective then).
std::optional<Coloring> greedy_list_coloring(const LdcInstance& inst);

}  // namespace ldc::baselines
