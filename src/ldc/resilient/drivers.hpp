// Fault-tolerant driver wiring: concrete colorers hooked into the
// repair::run_resilient harness.
//
// Each wrapper runs a library colorer under a FaultPlan and self-stabilizes
// the result with repair::repair. For Linial and defective Linial the
// validation instance (full palette lists over the deterministic fixpoint
// palette) is synthesized here — the palette trajectory of Linial's
// reduction depends only on the graph's degree bound, never on message
// contents, so it is computable without touching the network even when the
// actual run is being corrupted.
//
// This library sits above ldc_d1lc and ldc_linial; the generic harness
// lives lower, in ldc_repair (see repair/resilient.hpp).
#pragma once

#include <cstdint>

#include "ldc/coloring/instance.hpp"
#include "ldc/d1lc/congest_colorer.hpp"
#include "ldc/linial/linial.hpp"
#include "ldc/repair/resilient.hpp"

namespace ldc::resilient {

/// The palette Linial's fixpoint iteration reaches from `initial` colors on
/// a graph whose conflict sets have size at most `bound` (capped at
/// `max_rounds` reduction steps, matching linial::color_from).
std::uint64_t linial_fixpoint_palette(std::uint64_t initial,
                                      std::uint64_t bound,
                                      std::uint32_t max_rounds = 64);

/// Instance with every list equal to [0, palette) and all defects `d` —
/// what a (defective) Linial output promises to satisfy.
LdcInstance full_palette_instance(const Graph& g, std::uint64_t palette,
                                  std::uint32_t d);

/// A resilient run together with the instance it was validated against
/// (synthesized for the Linial wrappers; callers re-validate at will).
struct DriverResult {
  repair::ResilientResult run;
  LdcInstance inst;
};

/// Linial's proper coloring under faults, repaired to a valid coloring with
/// the fault-free fixpoint palette.
DriverResult resilient_linial(Network& net,
                              const repair::ResilientOptions& opt = {});

/// d-defective Linial under faults, repaired against the full-palette
/// instance with all defect budgets d.
DriverResult resilient_defective_linial(
    Network& net, std::uint32_t d, const repair::ResilientOptions& opt = {});

/// The Theorem 1.4 (degree+1)-list coloring pipeline under faults, repaired
/// against the caller's instance.
repair::ResilientResult resilient_d1lc(Network& net, const LdcInstance& inst,
                                       const repair::ResilientOptions& opt = {},
                                       const d1lc::PipelineOptions& popt = {});

}  // namespace ldc::resilient
