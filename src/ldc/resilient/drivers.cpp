#include "ldc/resilient/drivers.hpp"

#include <algorithm>
#include <numeric>

#include "ldc/linial/cover_free.hpp"
#include "ldc/linial/defective_linial.hpp"

namespace ldc::resilient {
namespace {

std::uint64_t conflict_bound(const Graph& g) {
  return std::max<std::uint64_t>(1, g.max_degree());
}

}  // namespace

std::uint64_t linial_fixpoint_palette(std::uint64_t initial,
                                      std::uint64_t bound,
                                      std::uint32_t max_rounds) {
  // Mirrors linial::color_from: the family choice (and thus the palette
  // trajectory) is a pure function of (palette, bound).
  std::uint64_t palette = initial;
  for (std::uint32_t r = 0; r < max_rounds; ++r) {
    const linial::RsFamily fam = linial::choose_family(palette, bound, 0);
    if (fam.output_space() >= palette) break;
    palette = fam.output_space();
  }
  return palette;
}

LdcInstance full_palette_instance(const Graph& g, std::uint64_t palette,
                                  std::uint32_t d) {
  LdcInstance inst;
  inst.graph = &g;
  inst.color_space = palette;
  inst.lists.resize(g.n());
  ColorList proto;
  proto.colors.resize(palette);
  std::iota(proto.colors.begin(), proto.colors.end(), Color{0});
  proto.defects.assign(palette, d);
  for (auto& l : inst.lists) l = proto;
  return inst;
}

DriverResult resilient_linial(Network& net,
                              const repair::ResilientOptions& opt) {
  const Graph& g = net.graph();
  const std::uint64_t palette =
      linial_fixpoint_palette(g.max_id() + 1, conflict_bound(g));
  DriverResult res;
  res.inst = full_palette_instance(g, palette, 0);
  res.run = repair::run_resilient(
      net, res.inst,
      [](Network& n, const LdcInstance&) {
        return linial::color(n).phi;
      },
      opt);
  return res;
}

DriverResult resilient_defective_linial(Network& net, std::uint32_t d,
                                        const repair::ResilientOptions& opt) {
  const Graph& g = net.graph();
  const std::uint64_t bound = conflict_bound(g);
  std::uint64_t palette = linial_fixpoint_palette(g.max_id() + 1, bound);
  if (d > 0) {
    palette = linial::choose_family(palette, bound, d).output_space();
  }
  DriverResult res;
  res.inst = full_palette_instance(g, palette, d);
  res.run = repair::run_resilient(
      net, res.inst,
      [d](Network& n, const LdcInstance&) {
        return linial::defective_color(n, d).phi;
      },
      opt);
  return res;
}

repair::ResilientResult resilient_d1lc(Network& net, const LdcInstance& inst,
                                       const repair::ResilientOptions& opt,
                                       const d1lc::PipelineOptions& popt) {
  return repair::run_resilient(
      net, inst,
      [&popt](Network& n, const LdcInstance& i) {
        return d1lc::color(n, i, popt).phi;
      },
      opt);
}

}  // namespace ldc::resilient
