// A2 (ablation) — Theorem 1.3's class count q = q_factor * Lambda^(1/2).
//
// Theorem 1.3 balances the number of arbdefective classes (round cost
// ~q per stage) against the per-class outdegree delta ~ Delta/q (which
// drives the per-class OLDC difficulty and the repair safety net). The
// sweep shows the optimum is flat around the default q_factor = 2.
#include "common.hpp"

#include "ldc/arb/list_arbdefective.hpp"

namespace {
using namespace ldc;

void run(harness::ExperimentContext& ctx) {
  const std::uint32_t delta = ctx.smoke() ? 12 : 24;
  const Graph g =
      bench::regular_graph(ctx.smoke() ? 96 : 160, delta, 44);
  const LdcInstance inst = delta_plus_one_instance(g);
  auto& t = ctx.table(
      "A2: Theorem 1.3 rounds vs q_factor ((Delta+1) instance, Delta = " +
          std::to_string(delta) + ")",
      {"q_factor", "rounds", "class iters", "arbdef rounds", "oldc rounds",
       "repair rounds", "tail rounds", "valid"});
  for (double qf : ctx.pick<std::vector<double>>({0.5, 1.0, 2.0, 4.0, 8.0},
                                                 {1.0, 2.0})) {
    Network net(g);
    ctx.prepare(net);
    const auto lin = linial::color(net);
    mt::CandidateParams params;
    arb::Theorem13Options opt;
    opt.q_factor = qf;
    const auto res = arb::solve_list_arbdefective(
        net, inst, lin.phi, lin.palette, arb::two_phase_solver(params), opt);
    ctx.record("thm13/q_factor=" + std::to_string(qf), net);
    t.add_row({qf, std::uint64_t{res.stats.rounds + lin.rounds},
               std::uint64_t{res.stats.class_iterations},
               std::uint64_t{res.stats.arbdef_rounds},
               std::uint64_t{res.stats.oldc_rounds},
               std::uint64_t{res.stats.repair_rounds},
               std::uint64_t{res.stats.tail_rounds},
               std::string(res.valid ? "ok" : "VIOLATION")});
  }
}

const harness::Registrar reg{{
    .name = "a2_qfactor",
    .claim = "Ablation (Thm 1.3): the class-count factor q has a flat "
             "optimum around the default q_factor = 2",
    .axes = {"q_factor"},
    .run = run,
}};

}  // namespace
