// A2 (ablation) — Theorem 1.3's class count q = q_factor * Lambda^(1/2).
//
// Theorem 1.3 balances the number of arbdefective classes (round cost
// ~q per stage) against the per-class outdegree delta ~ Delta/q (which
// drives the per-class OLDC difficulty and the repair safety net). The
// sweep shows the optimum is flat around the default q_factor = 2.
#include "common.hpp"

#include "ldc/arb/list_arbdefective.hpp"

int main() {
  using namespace ldc;
  const Graph g = bench::regular_graph(160, 24, 44);
  const LdcInstance inst = delta_plus_one_instance(g);
  Table t("A2: Theorem 1.3 rounds vs q_factor ((Delta+1) instance, "
          "Delta = 24)",
          {"q_factor", "rounds", "class iters", "arbdef rounds",
           "oldc rounds", "repair rounds", "tail rounds", "valid"});
  for (double qf : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    Network net(g);
    const auto lin = linial::color(net);
    mt::CandidateParams params;
    arb::Theorem13Options opt;
    opt.q_factor = qf;
    const auto res = arb::solve_list_arbdefective(
        net, inst, lin.phi, lin.palette, arb::two_phase_solver(params), opt);
    t.add_row({qf, std::uint64_t{res.stats.rounds + lin.rounds},
               std::uint64_t{res.stats.class_iterations},
               std::uint64_t{res.stats.arbdef_rounds},
               std::uint64_t{res.stats.oldc_rounds},
               std::uint64_t{res.stats.repair_rounds},
               std::uint64_t{res.stats.tail_rounds},
               std::string(res.valid ? "ok" : "VIOLATION")});
  }
  t.print(std::cout);
  return 0;
}
