// A1 (ablation) — candidate machinery parameters (k', tau cap).
//
// DESIGN.md §4 substitutes the paper's astronomically-sized candidate
// families with PRF families of k' sets under a capped tau. This ablation
// quantifies the trade-off: larger k' and tau give the P1 pigeonhole more
// slack (fewer relaxations / repairs) at higher internal cost; the library
// defaults sit where relaxations vanish on weight-condition instances.
#include "common.hpp"

namespace {
using namespace ldc;

void run(harness::ExperimentContext& ctx) {
  const std::uint32_t beta = 16;
  const Graph g = bench::regular_graph(96, beta, 33);
  const Orientation orient = Orientation::by_decreasing_id(g);
  const LdcInstance inst = bench::weighted_oriented_instance(
      g, orient, 16ULL * beta * beta, 40.0, beta / 4, 34);

  auto& t = ctx.table(
      "A1: two-phase solver vs candidate parameters (beta = 16, "
      "weight-condition instance)",
      {"k'", "tau cap", "tau used", "rounds", "p1_relaxed", "repaired",
       "repair rounds", "valid"});
  for (std::uint32_t kprime : ctx.pick<std::vector<std::uint32_t>>(
           {4, 8, 16, 32}, {8, 16})) {
    for (std::uint32_t tau_cap : ctx.pick<std::vector<std::uint32_t>>(
             {2, 4, 8, 16}, {4, 8})) {
      Network net(g);
      ctx.prepare(net);
      mt::CandidateParams params;
      params.kprime = kprime;
      params.tau_cap = tau_cap;
      const auto run = bench::two_phase_after_linial(net, inst, orient,
                                                     params);
      ctx.record("two-phase/kprime=" + std::to_string(kprime) +
                     "/tau_cap=" + std::to_string(tau_cap),
                 net);
      const auto check = validate_oldc(inst, orient, run.res.phi);
      t.add_row({std::uint64_t{kprime}, std::uint64_t{tau_cap},
                 std::uint64_t{run.res.stats.tau},
                 std::uint64_t{run.res.stats.rounds},
                 std::uint64_t{run.res.stats.p1_relaxed},
                 std::string(run.res.stats.repaired ? "yes" : "no"),
                 std::uint64_t{run.res.stats.repair_rounds},
                 bench::verdict(check)});
    }
  }
}

const harness::Registrar reg{{
    .name = "a1_candidate_params",
    .claim = "Ablation (DESIGN §4): larger k'/tau caps trade internal cost "
             "for fewer P1 relaxations and repairs",
    .axes = {"k'", "tau cap"},
    .run = run,
}};

}  // namespace
