// A1 (ablation) — candidate machinery parameters (k', tau cap).
//
// DESIGN.md §4 substitutes the paper's astronomically-sized candidate
// families with PRF families of k' sets under a capped tau. This ablation
// quantifies the trade-off: larger k' and tau give the P1 pigeonhole more
// slack (fewer relaxations / repairs) at higher internal cost; the library
// defaults sit where relaxations vanish on weight-condition instances.
#include "common.hpp"

#include "ldc/oldc/two_phase.hpp"

int main() {
  using namespace ldc;
  const std::uint32_t beta = 16;
  const Graph g = bench::regular_graph(96, beta, 33);
  const Orientation orient = Orientation::by_decreasing_id(g);
  RandomLdcParams ip;
  ip.color_space = 16ULL * beta * beta;
  ip.one_plus_nu = 2.0;
  ip.kappa = 40.0;
  ip.max_defect = beta / 4;
  ip.seed = 34;
  const LdcInstance inst = random_weighted_oriented_instance(g, orient, ip);

  Table t("A1: two-phase solver vs candidate parameters (beta = 16, "
          "weight-condition instance)",
          {"k'", "tau cap", "tau used", "rounds", "p1_relaxed", "repaired",
           "repair rounds", "valid"});
  for (std::uint32_t kprime : {4u, 8u, 16u, 32u}) {
    for (std::uint32_t tau_cap : {2u, 4u, 8u, 16u}) {
      Network net(g);
      const auto lin = linial::color(net);
      oldc::TwoPhaseInput in;
      in.inst = &inst;
      in.orientation = &orient;
      in.initial = &lin.phi;
      in.m = lin.palette;
      in.params.kprime = kprime;
      in.params.tau_cap = tau_cap;
      const auto res = oldc::solve_two_phase(net, in);
      const auto check = validate_oldc(inst, orient, res.phi);
      t.add_row({std::uint64_t{kprime}, std::uint64_t{tau_cap},
                 std::uint64_t{res.stats.tau},
                 std::uint64_t{res.stats.rounds},
                 std::uint64_t{res.stats.p1_relaxed},
                 std::string(res.stats.repaired ? "yes" : "no"),
                 std::uint64_t{res.stats.repair_rounds},
                 bench::verdict(check)});
    }
  }
  t.print(std::cout);
  return 0;
}
