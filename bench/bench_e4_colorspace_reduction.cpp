// E4 (Figure 2) — Theorem 1.2 / Corollary 4.2: the rounds-vs-message-size
// trade-off of recursive color space reduction.
//
// One fixed OLDC instance over |C| = 2^12 colors is solved at recursion
// depths r = 0 (direct), 2, 3, 4, 6. Prediction: max message bits fall
// like |C|^(1/r) (the list encoding dominates) while rounds grow roughly
// linearly in the number of levels.
#include "common.hpp"

#include "ldc/oldc/multi_defect.hpp"
#include "ldc/reduction/color_space.hpp"

int main() {
  using namespace ldc;
  const std::uint32_t beta = 12;
  const Graph g = bench::regular_graph(96, beta, 9);
  const Orientation orient = Orientation::by_decreasing_id(g);
  RandomLdcParams p;
  p.color_space = 1 << 12;
  p.one_plus_nu = 2.0;
  p.kappa = 50.0;
  p.max_defect = 5;
  p.seed = 77;
  const LdcInstance inst = random_weighted_oriented_instance(g, orient, p);

  mt::CandidateParams params;
  const reduction::OldcSolver base =
      [&params](Network& net, const LdcInstance& i, const Orientation& o,
                const Coloring& init, std::uint64_t m) {
        oldc::MultiDefectInput in;
        in.inst = &i;
        in.orientation = &o;
        in.initial = &init;
        in.m = m;
        in.params = params;
        return oldc::solve_multi_defect(net, in);
      };

  Table t("E4: color space reduction trade-off  (|C| = 4096, beta = 12)",
          {"depth r", "p per level", "levels", "rounds", "max msg bits",
           "total bits", "|C|^(1/r)", "valid"});
  for (std::uint32_t r : {0u, 2u, 3u, 4u, 6u}) {
    Network net(g);
    const auto lin = linial::color(net);
    reduction::Options opt;
    opt.p = (r == 0) ? 0 : reduction::subspace_count_for_depth(1 << 12, r);
    const auto res = reduction::reduce_and_solve(net, inst, orient, lin.phi,
                                                 lin.palette, opt, base);
    const auto check = validate_oldc(inst, orient, res.phi);
    t.add_row({std::uint64_t{r}, opt.p, std::uint64_t{res.levels},
               std::uint64_t{res.stats.rounds},
               std::uint64_t{net.metrics().max_message_bits},
               net.metrics().total_bits,
               (r == 0) ? std::uint64_t{1 << 12}
                        : reduction::subspace_count_for_depth(1 << 12, r),
               bench::verdict(check)});
  }
  t.print(std::cout);
  return 0;
}
