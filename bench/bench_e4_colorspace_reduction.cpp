// E4 (Figure 2) — Theorem 1.2 / Corollary 4.2: the rounds-vs-message-size
// trade-off of recursive color space reduction.
//
// One fixed OLDC instance over |C| = 2^12 colors is solved at recursion
// depths r = 0 (direct), 2, 3, 4, 6. Prediction: max message bits fall
// like |C|^(1/r) (the list encoding dominates) while rounds grow roughly
// linearly in the number of levels.
#include "common.hpp"

#include "ldc/reduction/color_space.hpp"

namespace {
using namespace ldc;

void run(harness::ExperimentContext& ctx) {
  const std::uint32_t beta = ctx.smoke() ? 8 : 12;
  const std::uint64_t space = ctx.smoke() ? (1 << 10) : (1 << 12);
  const Graph g = bench::regular_graph(ctx.smoke() ? 64 : 96, beta, 9);
  const Orientation orient = Orientation::by_decreasing_id(g);
  const LdcInstance inst =
      bench::weighted_oriented_instance(g, orient, space, 50.0, 5, 77);
  const reduction::OldcSolver base = bench::multi_defect_solver();

  auto& t = ctx.table(
      "E4: color space reduction trade-off  (|C| = " +
          std::to_string(space) + ", beta = " + std::to_string(beta) + ")",
      {"depth r", "p per level", "levels", "rounds", "max msg bits",
       "total bits", "|C|^(1/r)", "valid"});
  for (std::uint32_t r : ctx.pick<std::vector<std::uint32_t>>(
           {0, 2, 3, 4, 6}, {0, 2, 3})) {
    Network net(g);
    ctx.prepare(net);
    const auto lin = linial::color(net);
    reduction::Options opt;
    opt.p = (r == 0) ? 0 : reduction::subspace_count_for_depth(space, r);
    const auto res = reduction::reduce_and_solve(net, inst, orient, lin.phi,
                                                 lin.palette, opt, base);
    ctx.record("depth=" + std::to_string(r), net);
    const auto check = validate_oldc(inst, orient, res.phi);
    t.add_row({std::uint64_t{r}, opt.p, std::uint64_t{res.levels},
               std::uint64_t{res.stats.rounds},
               std::uint64_t{net.metrics().max_message_bits},
               net.metrics().total_bits,
               (r == 0) ? space : reduction::subspace_count_for_depth(space, r),
               bench::verdict(check)});
  }
}

const harness::Registrar reg{{
    .name = "e04_colorspace_reduction",
    .claim = "Thm 1.2 / Cor 4.2: depth-r recursion multiplies rounds by ~r "
             "and shrinks messages to ~|C|^(1/r)",
    .axes = {"recursion depth r"},
    .run = run,
}};

}  // namespace
