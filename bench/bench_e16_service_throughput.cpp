// E16 (service) — the job-serving subsystem end to end.
//
// Two tables. The scripted table drives one Service at one worker with a
// pause/resume/drain discipline, which makes every counter deterministic:
// a burst of 10 submissions against a 6-slot queue must reject exactly 4
// (backpressure), a cancel issued while paused must land before the
// worker dequeues (cancelled, not run), and a reverse-order resubmit
// against a 4-entry cache must hit 4 times, miss once and evict twice
// (LRU). The emitted result stream is folded into one digest, and the
// greedy job's coloring digest is cross-checked against a direct
// closed-loop run of the same instance — the service must compute exactly
// what the harness computes. The throughput table scales workers and
// reports jobs/s as observational columns only.
#include "common.hpp"

#include <chrono>
#include <mutex>

#include "ldc/baselines/greedy.hpp"
#include "ldc/service/service.hpp"

namespace {
using namespace ldc;

service::Job ring_job(const std::string& algo, std::uint32_t n,
                      std::uint64_t seed) {
  service::Job job;
  job.algorithm = algo;
  job.seed = seed;
  job.graph.family = "ring";
  job.graph.n = n;
  return job;
}

service::Job regular_job(const std::string& algo, std::uint32_t n,
                         std::uint32_t d, std::uint64_t gseed,
                         std::uint64_t seed) {
  service::Job job;
  job.algorithm = algo;
  job.seed = seed;
  job.graph.family = "regular";
  job.graph.n = n;
  job.graph.d = d;
  job.graph.seed = gseed;
  return job;
}

using bench::stream_digest;

void run(harness::ExperimentContext& ctx) {
  // ---- Scripted phase: deterministic counters at one worker. ----------
  auto& script = ctx.table(
      "E16a: scripted service session (1 worker, queue=6, cache=4 entries)",
      {"phase", "submitted", "admitted", "rejected", "ok", "cached",
       "cancelled", "evictions", "stream digest", "matches direct"});

  const std::vector<service::Job> burst = {
      ring_job("greedy", 48, 1),  ring_job("luby", 48, 5),
      ring_job("linial", 48, 1),  ring_job("kw", 48, 1),
      regular_job("d1lc", 48, 6, 9, 1), regular_job("greedy", 48, 6, 9, 1),
      ring_job("greedy", 48, 2),  ring_job("luby", 48, 6),
      ring_job("linial", 48, 2),  ring_job("kw", 48, 2),
  };

  service::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 6;
  cfg.cache_bytes = 4 * service::ResultCache::kEntryBytes;

  std::vector<service::JobResult> results;
  std::mutex mu;
  service::Service svc(cfg, [&](const service::JobResult& r) {
    std::lock_guard<std::mutex> lock(mu);
    results.push_back(r);
  });

  // Burst while paused: admission is decided before any job runs, so the
  // rejection count is a pure function of capacity.
  svc.pause();
  std::vector<std::uint64_t> admitted_ids;
  std::uint64_t rejected = 0;
  for (const auto& job : burst) {
    const auto a = svc.submit(job);
    if (a.admitted) {
      admitted_ids.push_back(a.id);
    } else {
      ++rejected;
    }
  }
  // Cancel the last admitted job while it is still queued.
  svc.cancel(admitted_ids.back());
  svc.resume();
  svc.drain();

  const auto count = [&](const char* status, bool cached_only = false) {
    std::uint64_t c = 0;
    for (const auto& r : results) {
      if (r.status == status && (!cached_only || r.cached)) ++c;
    }
    return c;
  };
  const std::uint64_t burst_digest = stream_digest(results);

  // Cross-check: the service's greedy result on ring(48) must match a
  // direct closed-loop run of the identical instance.
  const auto [direct_digest, direct_metrics] = bench::closed_loop(
      ctx, gen::ring(48), "direct/greedy_ring48",
      [](Network&, const Graph&, const LdcInstance& inst) {
        const auto phi = baselines::greedy_list_coloring(inst);
        return phi ? service::coloring_digest(*phi) : 0;
      });
  (void)direct_metrics;
  bool matches = false;
  for (const auto& r : results) {
    if (r.id == admitted_ids.front()) {
      matches = r.outcome.color_digest == direct_digest;
    }
  }

  script.add_row({std::string("burst"), std::uint64_t{burst.size()},
                  std::uint64_t{admitted_ids.size()}, rejected, count("ok"),
                  count("ok", true), count("cancelled"), std::uint64_t{0},
                  burst_digest,
                  std::string(matches ? "ok" : "DIVERGED")});

  // Reverse-order resubmit of the five completed jobs: with a 4-entry
  // LRU the oldest insertion is already gone, so this hits 4, misses 1,
  // and the refill evicts once more (2 evictions total, both phases).
  results.clear();
  for (std::size_t i = 5; i-- > 0;) svc.submit(burst[i]);
  svc.drain();
  const auto stats = svc.stats(/*counters_only=*/true);
  const std::uint64_t evictions =
      stats.at("cache").at("evictions").as_uint();
  script.add_row({std::string("resubmit"), std::uint64_t{5},
                  std::uint64_t{5}, std::uint64_t{0}, count("ok"),
                  count("ok", true), std::uint64_t{0}, evictions,
                  stream_digest(results), std::string("-")});
  svc.shutdown();

  // ---- Throughput phase: observational scaling across workers. --------
  auto& scale = ctx.table(
      "E16b: service throughput vs workers (closed-loop clients)",
      {"workers", "jobs", "ok", "wall ms (obs)", "jobs/s (obs)"});
  const std::uint64_t jobs = ctx.pick<std::uint64_t>(60, 20);
  for (std::size_t workers :
       ctx.pick<std::vector<std::size_t>>({1, 2, 4}, {1, 2})) {
    service::ServiceConfig tcfg;
    tcfg.workers = workers;
    tcfg.queue_capacity = jobs;  // admission never the bottleneck here
    tcfg.cache_bytes = 0;        // measure compute, not cache luck
    std::atomic<std::uint64_t> ok{0};
    service::Service tsvc(tcfg, [&](const service::JobResult& r) {
      if (r.status == "ok" && r.outcome.valid) {
        ok.fetch_add(1, std::memory_order_relaxed);
      }
    });
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < jobs; ++i) {
      // Distinct seeds -> distinct digests: every job is real work.
      const char* algos[] = {"greedy", "luby", "linial", "kw"};
      tsvc.submit(ring_job(algos[i % 4], 64, 100 + i));
    }
    tsvc.drain();
    const auto stop = std::chrono::steady_clock::now();
    tsvc.shutdown();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    scale.add_row({std::uint64_t{workers}, jobs, ok.load(), wall_ms,
                   wall_ms > 0 ? 1000.0 * double(jobs) / wall_ms : 0.0});
  }
}

const harness::Registrar reg{{
    .name = "e16_service_throughput",
    .claim = "Service: scripted sessions are deterministic (backpressure, "
             "cancellation, LRU cache) and match direct closed-loop runs; "
             "throughput scales with workers",
    .axes = {"phase", "workers"},
    .run = run,
}};

}  // namespace
