// Open-loop load generator for the ldc_serve unix-socket frontend.
//
// Open-loop means arrivals follow a fixed schedule that does NOT wait for
// responses: if the server falls behind, requests queue up and latency
// grows — the honest way to measure a service under load (closed-loop
// clients self-throttle and hide queueing delay). Each connection runs
// its own slice of the offered rate with deterministic arrival times;
// job popularity follows a Zipf(s) distribution over a small hot set so
// the server's LRU ResultCache sees a realistic skewed mix, and optional
// cancel/deadline churn exercises the control path concurrently with
// submissions.
//
// One thread per connection owns both directions of its socket (poll
// with a timeout equal to the gap before the next scheduled send), so
// latency bookkeeping is thread-local: the j-th submission on a
// connection is session-local id j (the event-loop frontend numbers each
// session independently), which lets send timestamps live in a plain
// vector indexed by id. After the send window closes the client issues
// `shutdown` and drains until `bye`/EOF, so every admitted job's result
// is still collected and counted.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <cerrno>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "ldc/harness/json.hpp"
#include "ldc/service/job.hpp"

namespace ldc::bench {

struct LoadOptions {
  std::string socket_path;
  std::size_t connections = 4;
  double rate = 200.0;           ///< offered submissions/s (all connections)
  std::uint64_t duration_ms = 1000;  ///< send window length
  std::size_t hot_jobs = 32;     ///< distinct job specs in the hot set
  double zipf_s = 1.1;           ///< popularity skew (0 = uniform)
  std::uint32_t cancel_every = 0;    ///< cancel every k-th submit (0 = off)
  std::uint32_t deadline_every = 0;  ///< deadline on every k-th (0 = off)
  std::uint64_t deadline_ms = 5;
  std::uint32_t graph_n = 48;    ///< ring size of the hot-set jobs
  std::uint64_t seed = 1;
  /// Which server engine the workload is shaped for. "dist" switches the
  /// hot set to family == "corpus" jobs over `corpus` (the only family
  /// the dist engine serves); the other engines keep the generator jobs.
  /// The server's engine is its own flag — this only shapes the jobs.
  std::string engine = "serial";
  std::string corpus;            ///< hot-set corpus name (engine "dist")
};

struct LoadReport {
  std::uint64_t sent = 0;        ///< submit requests written
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;    ///< queue-full backpressure
  std::uint64_t results = 0;
  std::uint64_t ok = 0;
  std::uint64_t cached = 0;      ///< ok results served from the cache
  std::uint64_t cancelled = 0;
  std::uint64_t deadline_missed = 0;
  std::uint64_t failed = 0;
  std::uint64_t errors = 0;      ///< protocol error events
  double wall_ms = 0;            ///< send window + drain, wall clock
  double goodput = 0;            ///< ok results per second of wall time
  /// Submit->result latency: the send timestamp of the submit line to the
  /// arrival of its result line (NOT admission — the admitted event is not
  /// timestamped, so queueing delay ahead of admission is included).
  double p50_us = 0, p99_us = 0, p999_us = 0;
  /// Per-connection breakdown (index = connection), for spotting a lane
  /// that starved while the aggregate looked healthy.
  struct PerConn {
    std::uint64_t sent = 0;
    std::uint64_t ok = 0;
    double goodput = 0;  ///< ok results per second of wall time
  };
  std::vector<PerConn> per_conn;
};

namespace loadgen_detail {

inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Cumulative Zipf(s) distribution over ranks 0..n-1.
inline std::vector<double> zipf_cdf(std::size_t n, double s) {
  std::vector<double> cdf(n);
  double total = 0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf[k] = total;
  }
  for (double& c : cdf) c /= total;
  return cdf;
}

inline std::size_t sample(const std::vector<double>& cdf,
                          std::uint64_t& rng) {
  const double u =
      static_cast<double>(splitmix64(rng) >> 11) * 0x1.0p-53;
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  return static_cast<std::size_t>(it - cdf.begin());
}

/// The rank-r member of the hot set: a rank-determined algorithm and
/// seed, so distinct ranks have distinct digests and repeats of a rank
/// are exact cache hits. Under --engine dist the hot set runs over the
/// named corpus (the dist engine serves only corpus jobs); otherwise it
/// is a generated ring.
inline service::Job hot_job(const LoadOptions& opt, std::size_t rank) {
  static const char* kAlgos[] = {"greedy", "luby", "linial", "kw"};
  service::Job job;
  job.algorithm = kAlgos[rank % 4];
  job.seed = 1000 + rank;
  if (opt.engine == "dist") {
    job.graph.family = "corpus";
    job.graph.corpus = opt.corpus;
  } else {
    job.graph.family = "ring";
    job.graph.n = opt.graph_n;
  }
  return job;
}

inline int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("ldc_load: socket failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    ::close(fd);
    throw std::runtime_error("ldc_load: socket path too long");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    throw std::runtime_error("ldc_load: connect " + path + ": " +
                             std::strerror(errno));
  }
  return fd;
}

inline void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // server gone; the read side will see EOF
    }
    off += static_cast<std::size_t>(n);
  }
}

/// Nearest-rank percentile of an ascending-sorted sample: the element
/// with 1-based rank ceil(p * N), clamped to [1, N]. Empty input reports
/// 0. This is the standard convention — p99.9 of 100 samples is rank 100
/// (the maximum), where the floor-index form `sorted[size_t(p * (N-1))]`
/// would round down to sorted[98] and under-report the tail.
inline double percentile_sorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double n = static_cast<double>(sorted.size());
  const auto rank = static_cast<std::size_t>(std::ceil(p * n));
  const std::size_t idx =
      std::min(std::max<std::size_t>(rank, 1), sorted.size()) - 1;
  return sorted[idx];
}

struct ConnStats {
  std::uint64_t sent = 0, admitted = 0, rejected = 0, results = 0, ok = 0,
                cached = 0, cancelled = 0, deadline_missed = 0, failed = 0,
                errors = 0;
  std::vector<double> latency_us;
};

}  // namespace loadgen_detail

/// Runs the open-loop workload against a listening ldc_serve socket.
/// Blocks until every connection has drained (shutdown -> bye).
inline LoadReport run_open_loop(const LoadOptions& opt) {
  using Clock = std::chrono::steady_clock;
  namespace d = loadgen_detail;

  const std::vector<double> cdf =
      d::zipf_cdf(std::max<std::size_t>(opt.hot_jobs, 1),
                  std::max(opt.zipf_s, 0.0));
  const double per_conn_interval_s =
      static_cast<double>(opt.connections) / std::max(opt.rate, 1e-9);

  std::vector<d::ConnStats> stats(opt.connections);
  std::vector<std::thread> threads;
  const auto start = Clock::now();
  const auto window_end =
      start + std::chrono::milliseconds(opt.duration_ms);

  for (std::size_t c = 0; c < opt.connections; ++c) {
    threads.emplace_back([&, c] {
      d::ConnStats& st = stats[c];
      const int fd = d::connect_unix(opt.socket_path);
      std::uint64_t rng = opt.seed * 0x5851f42d4c957f2dull + c + 1;
      std::vector<Clock::time_point> sent_at;  // index = local id - 1
      std::string inbuf;
      bool saw_bye = false;

      auto consume = [&](bool until_eof) {
        char buf[4096];
        for (;;) {
          const ssize_t n = ::read(fd, buf, sizeof buf);
          if (n < 0) {
            if (errno == EINTR) continue;
            break;  // EAGAIN (poll said readable but race) or error
          }
          if (n == 0) return true;  // EOF
          inbuf.append(buf, static_cast<std::size_t>(n));
          std::size_t nl;
          while ((nl = inbuf.find('\n')) != std::string::npos) {
            const std::string line = inbuf.substr(0, nl);
            inbuf.erase(0, nl + 1);
            try {
              const harness::Json ev = harness::Json::parse_line(line);
              const std::string& kind = ev.at("event").as_string();
              if (kind == "result") {
                ++st.results;
                const std::uint64_t id = ev.at("id").as_uint();
                if (id >= 1 && id <= sent_at.size()) {
                  st.latency_us.push_back(
                      std::chrono::duration<double, std::micro>(
                          Clock::now() - sent_at[id - 1])
                          .count());
                }
                const std::string& status = ev.at("status").as_string();
                if (status == "ok") {
                  ++st.ok;
                  const harness::Json* cached = ev.find("cached");
                  if (cached != nullptr && cached->as_bool()) ++st.cached;
                } else if (status == "cancelled") {
                  ++st.cancelled;
                } else if (status == "deadline_missed") {
                  ++st.deadline_missed;
                } else {
                  ++st.failed;
                }
              } else if (kind == "admitted") {
                ++st.admitted;
              } else if (kind == "rejected") {
                ++st.rejected;
              } else if (kind == "error") {
                ++st.errors;
              } else if (kind == "bye") {
                saw_bye = true;
              }
            } catch (const harness::JsonError&) {
              ++st.errors;  // torn line: count, keep draining
            }
          }
          if (!until_eof) return false;  // one chunk per readiness
        }
        return false;
      };

      // ---- send window: fixed schedule, reads interleaved -------------
      for (;;) {
        const auto now = Clock::now();
        if (now >= window_end) break;
        const auto next_send =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(
                            static_cast<double>(st.sent) *
                            per_conn_interval_s));
        if (now >= next_send) {
          const std::size_t rank = d::sample(cdf, rng);
          service::Job job = d::hot_job(opt, rank);
          const std::uint64_t id = st.sent + 1;  // session-local id
          if (opt.deadline_every != 0 && id % opt.deadline_every == 0) {
            job.deadline_ms = opt.deadline_ms;
          }
          harness::Json req = harness::Json::object();
          req.add("op", "submit");
          req.add("job", service::job_to_json(job));
          std::string wire = req.dump();
          wire.push_back('\n');
          if (opt.cancel_every != 0 && id % opt.cancel_every == 0) {
            harness::Json cancel = harness::Json::object();
            cancel.add("op", "cancel");
            cancel.add("id", id);
            wire += cancel.dump();
            wire.push_back('\n');
          }
          sent_at.push_back(Clock::now());
          ++st.sent;
          d::send_all(fd, wire);
          continue;  // schedule may already owe the next send (backlog)
        }
        const auto wait_until = std::min(next_send, window_end);
        const auto wait_ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                wait_until - now)
                .count();
        pollfd pfd{fd, POLLIN, 0};
        const int rc =
            ::poll(&pfd, 1, static_cast<int>(std::max<long long>(
                                wait_ms, 0)));
        if (rc > 0 && (pfd.revents & (POLLIN | POLLHUP)) != 0) {
          if (consume(false)) break;  // premature EOF: server went away
        }
      }

      // ---- drain: ask for shutdown, read until bye/EOF ----------------
      d::send_all(fd, "{\"op\":\"shutdown\"}\n");
      while (!saw_bye) {
        pollfd pfd{fd, POLLIN, 0};
        if (::poll(&pfd, 1, 10000) <= 0) break;  // hung server: give up
        if (consume(false)) break;
      }
      ::close(fd);
    });
  }
  for (auto& t : threads) t.join();
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             Clock::now() - start)
                             .count();

  LoadReport rep;
  std::vector<double> latencies;
  for (const auto& st : stats) {
    rep.sent += st.sent;
    rep.admitted += st.admitted;
    rep.rejected += st.rejected;
    rep.results += st.results;
    rep.ok += st.ok;
    rep.cached += st.cached;
    rep.cancelled += st.cancelled;
    rep.deadline_missed += st.deadline_missed;
    rep.failed += st.failed;
    rep.errors += st.errors;
    latencies.insert(latencies.end(), st.latency_us.begin(),
                     st.latency_us.end());
  }
  rep.wall_ms = wall_ms;
  rep.goodput = wall_ms > 0 ? 1000.0 * double(rep.ok) / wall_ms : 0.0;
  rep.per_conn.reserve(stats.size());
  for (const auto& st : stats) {
    LoadReport::PerConn pc;
    pc.sent = st.sent;
    pc.ok = st.ok;
    pc.goodput = wall_ms > 0 ? 1000.0 * double(st.ok) / wall_ms : 0.0;
    rep.per_conn.push_back(pc);
  }
  std::sort(latencies.begin(), latencies.end());
  rep.p50_us = loadgen_detail::percentile_sorted(latencies, 0.50);
  rep.p99_us = loadgen_detail::percentile_sorted(latencies, 0.99);
  rep.p999_us = loadgen_detail::percentile_sorted(latencies, 0.999);
  return rep;
}

}  // namespace ldc::bench
