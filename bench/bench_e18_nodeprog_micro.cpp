// E18 (harness) — node-program micro: fused word-broadcast rounds.
//
// Broadcast-only rounds whose payload is a single bounded word (a color,
// a candidate index) dominate the Linial and OLDC schedules. The fused
// fast path (Network::exchange_broadcast_word) skips per-edge mail
// entirely: one word per *sender* instead of one Message handle and one
// inbox slot per *edge*. This experiment pins the claim from both sides:
//
//  - Deterministic columns: per-round traffic (identical to the unfused
//    path by construction — the accounting is replicated, not
//    approximated), a decode checksum parity verdict between the fused
//    and unfused paths, and the fused serial steady-state allocation
//    verdict (the committed baseline *enforces* zero heap allocations).
//  - Observational columns: rounds/sec for each path and the resulting
//    speedup. The acceptance bar is >= 3x on broadcast-only Linial-style
//    rounds at LDC_THREADS=1.
//
// The allocation counters are the binary-wide operator new/delete
// replacement carried by bench_e15_exchange_micro.cpp.
#include "common.hpp"

#include <atomic>
#include <chrono>

namespace ldc::bench {
extern std::atomic<std::uint64_t> g_alloc_count;
extern std::atomic<std::uint64_t> g_alloc_bytes;
}  // namespace ldc::bench

namespace {
using namespace ldc;

struct Topo {
  std::string name;
  Graph g;
  std::uint64_t bound;  ///< broadcast words are drawn from [0, bound]
};

struct Probe {
  double rounds_per_sec = 0.0;
  std::uint64_t allocs_per_round = 0;
  std::uint64_t checksum = 0;  ///< wrapping sum of every decoded word
};

// The per-node word each sender broadcasts every round: a fixed
// pseudo-random color in [0, bound], exactly what a Linial round sends.
std::vector<std::uint64_t> make_words(const Graph& g, std::uint64_t bound) {
  std::vector<std::uint64_t> words(g.n());
  for (NodeId v = 0; v < g.n(); ++v) {
    words[v] = (v * 0x9E3779B97F4A7C15ull) % (bound + 1);
  }
  return words;
}

// Times `timed_rounds` steady-state broadcast+decode rounds (after a
// warm-up that sizes the arena). Each round is a full node program: write
// the word, exchange, decode every neighbor's word into a per-node sum.
// No trace is attached: this is the bare hot loop.
Probe time_rounds(const Graph& g, std::uint64_t bound, bool fused,
                  bool parallel, std::size_t threads,
                  std::uint64_t timed_rounds) {
  Network net(g);
  if (parallel) net.set_engine(Network::Engine::kParallel, threads);
  const std::vector<std::uint64_t> colors = make_words(g, bound);
  std::vector<std::uint64_t> words(g.n());
  std::vector<Message> msgs(g.n());
  std::vector<std::uint64_t> sums(g.n());

  const auto one_round = [&]() {
    if (fused) {
      net.run_node_programs([&](NodeId v) { words[v] = colors[v]; });
      const WordMail in = net.exchange_broadcast_word(words, bound);
      net.run_node_programs([&](NodeId v) {
        std::uint64_t s = 0;
        for (const auto [u, word] : in[v]) {
          (void)u;
          s += word;
        }
        sums[v] = s;
      });
    } else {
      net.run_node_programs([&](NodeId v) {
        BitWriter w;
        w.write_bounded(colors[v], bound);
        msgs[v] = Message::from(w);
      });
      const auto in = net.exchange_broadcast(msgs);
      net.run_node_programs([&](NodeId v) {
        std::uint64_t s = 0;
        for (const auto& [u, m] : in[v]) {
          (void)u;
          auto r = m.reader();
          s += r.read_bounded(bound);
        }
        sums[v] = s;
      });
    }
  };

  for (int i = 0; i < 3; ++i) one_round();  // warm up: size the arena
  const std::uint64_t allocs0 =
      bench::g_alloc_count.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < timed_rounds; ++i) one_round();
  const auto t1 = std::chrono::steady_clock::now();

  Probe p;
  p.rounds_per_sec = static_cast<double>(timed_rounds) /
                     std::chrono::duration<double>(t1 - t0).count();
  p.allocs_per_round =
      (bench::g_alloc_count.load(std::memory_order_relaxed) - allocs0) /
      timed_rounds;
  for (std::uint64_t s : sums) p.checksum += s;
  return p;
}

void run(harness::ExperimentContext& ctx) {
  std::vector<Topo> topos;
  {
    const std::uint32_t ring_n = ctx.pick<std::uint32_t>(4096, 512);
    topos.push_back({"ring", gen::ring(ring_n), ring_n - 1});
    const std::uint32_t reg_n = ctx.pick<std::uint32_t>(1024, 256);
    topos.push_back(
        {"random-regular", gen::random_regular(reg_n, 16, 7), reg_n - 1});
    const std::uint32_t clique_n = ctx.pick<std::uint32_t>(256, 64);
    topos.push_back({"clique", gen::clique(clique_n), clique_n - 1});
  }
  const std::size_t par_threads = ctx.pick<std::size_t>(4, 2);
  const std::uint64_t timed_rounds = ctx.pick<std::uint64_t>(200, 40);

  auto& t = ctx.table(
      "E18: fused word-broadcast rounds vs. per-edge mail (" +
          std::to_string(timed_rounds) + " steady-state rounds/config)",
      {"topology", "engine", "messages/round", "bits/round", "decode parity",
       "fused alloc", "unfused rounds/s (obs)", "fused rounds/s (obs)",
       "speedup (obs)"});

  for (const Topo& topo : topos) {
    // Deterministic leg: traced networks pin the digests of both paths in
    // the baseline; their traffic counters must agree exactly.
    std::uint64_t msgs_per_round = 0;
    std::uint64_t bits_per_round = 0;
    bool traffic_match = true;
    {
      const std::vector<std::uint64_t> colors = make_words(topo.g, topo.bound);
      Network fused_net(topo.g);
      ctx.prepare(fused_net);
      for (int i = 0; i < 2; ++i) {
        (void)fused_net.exchange_broadcast_word(colors, topo.bound);
      }
      ctx.record(topo.name + "/fused", fused_net);
      msgs_per_round = fused_net.metrics().messages / 2;
      bits_per_round = fused_net.metrics().total_bits / 2;

      Network unfused_net(topo.g);
      ctx.prepare(unfused_net);
      std::vector<Message> msgs(topo.g.n());
      for (NodeId v = 0; v < topo.g.n(); ++v) {
        BitWriter w;
        w.write_bounded(colors[v], topo.bound);
        msgs[v] = Message::from(w);
      }
      for (int i = 0; i < 2; ++i) (void)unfused_net.exchange_broadcast(msgs);
      ctx.record(topo.name + "/unfused", unfused_net);
      traffic_match = unfused_net.metrics().messages / 2 == msgs_per_round &&
                      unfused_net.metrics().total_bits / 2 == bits_per_round;
    }

    for (const bool parallel : {false, true}) {
      const std::string engine =
          parallel ? "parallel/" + std::to_string(par_threads) : "serial";
      const Probe unfused = time_rounds(topo.g, topo.bound, false, parallel,
                                        par_threads, timed_rounds);
      const Probe fused = time_rounds(topo.g, topo.bound, true, parallel,
                                      par_threads, timed_rounds);
      const std::string parity =
          (fused.checksum == unfused.checksum && traffic_match)
              ? "match"
              : "MISMATCH";
      const std::string alloc_verdict =
          parallel ? "n/a"
                   : (fused.allocs_per_round == 0
                          ? "none"
                          : "ALLOC(" + std::to_string(fused.allocs_per_round) +
                                ")");
      t.add_row({topo.name, engine, msgs_per_round, bits_per_round, parity,
                 alloc_verdict, unfused.rounds_per_sec, fused.rounds_per_sec,
                 fused.rounds_per_sec / unfused.rounds_per_sec});
    }
  }
}

const harness::Registrar reg{{
    .name = "e18_nodeprog_micro",
    .claim = "Perf: fusing broadcast-only rounds into one word per sender "
             "skips per-edge mail, multiplying rounds/sec while staying "
             "allocation-free and byte-equivalent to the unfused path",
    .axes = {"topology", "engine", "path"},
    .run = run,
}};

}  // namespace
