// E5 (Table 3) — d-arbdefective (Delta/(d+1)+1)-coloring rounds vs. d.
//
// Theorem 1.3 (with Theorem 1.1 plugged in): the pipeline solves the
// instance in ~sqrt(Delta/(d+1)) * polylog rounds; the prior locally-
// iterative approach [BEG18] pays O(Delta/(d+1) + log* n). Our [BEG18]
// stand-in is the PRF committing greedy (see DESIGN.md §4), so its
// *measured* rounds are flat-ish; the theory columns record the bounds
// the paper compares. Shape to check: pipeline rounds fall as d grows and
// stay sublinear in Delta/(d+1).
#include "common.hpp"

#include <cmath>

#include "ldc/arb/beg_arbdefective.hpp"
#include "ldc/arb/list_arbdefective.hpp"

namespace {
using namespace ldc;

void run(harness::ExperimentContext& ctx) {
  const std::uint32_t delta = ctx.smoke() ? 16 : 32;
  const Graph g =
      bench::regular_graph(ctx.smoke() ? 96 : 192, delta, 13);
  auto& t = ctx.table(
      "E5: d-arbdefective q-coloring (q = Delta/(d+1)+1, Delta = " +
          std::to_string(delta) + ")",
      {"d", "q", "pipeline rounds", "greedy rounds", "thy sqrt(D/(d+1))",
       "thy D/(d+1)", "valid"});
  for (std::uint32_t d : ctx.pick<std::vector<std::uint32_t>>(
           {0, 1, 2, 4, 8, 16}, {0, 1, 4})) {
    const std::uint32_t q = delta / (d + 1) + 1;
    const LdcInstance inst = uniform_defective_instance(g, q, d);
    const std::string tag = "d=" + std::to_string(d);

    // Pipeline (Theorem 1.3 + Theorem 1.1).
    Network net(g);
    ctx.prepare(net);
    const auto lin = linial::color(net);
    mt::CandidateParams params;
    const auto res = arb::solve_list_arbdefective(
        net, inst, lin.phi, lin.palette, arb::two_phase_solver(params));
    ctx.record("pipeline/" + tag, net);

    // Committing-greedy baseline (BEG18 stand-in).
    Network bnet(g);
    ctx.prepare(bnet);
    arb::ArbdefectiveOptions aopt;
    aopt.colors = q;
    aopt.defect = d;
    const auto base = arbdefective_color(bnet, aopt);
    ctx.record("greedy/" + tag, bnet);

    const auto check = validate_arbdefective(inst, res.out);
    t.add_row({std::uint64_t{d}, std::uint64_t{q},
               std::uint64_t{res.stats.rounds + lin.rounds},
               std::uint64_t{base.rounds},
               std::sqrt(static_cast<double>(delta) / (d + 1)),
               std::uint64_t{delta / (d + 1)},
               std::string((check.ok && base.success) ? "ok" : "VIOLATION")});
  }
}

const harness::Registrar reg{{
    .name = "e05_arbdefective_vs_d",
    .claim = "Thm 1.3: d-arbdefective (Delta/(d+1)+1)-coloring in "
             "~sqrt(Delta/(d+1)) polylog rounds vs the BEG18-style greedy",
    .axes = {"defect d"},
    .run = run,
}};

}  // namespace
