// E20 (runtime) — sharded single-graph execution: equivalence and scaling.
//
// Three tables. E20a is the hard gate: the full (Delta+1) pipeline run
// under kSharded at K in {1, 2, 7} (and kParallel for contrast) must
// reproduce the serial engine's trace digest, communication metrics and
// coloring byte-for-byte — the "matches serial" column is deterministic
// and pinned by the baseline checker. E20b extends the gate to faulty
// rounds: every drop/corrupt/crash/sleep PRF decision must pick the
// identical bits regardless of engine, so the flattened delivered
// payloads and fault counters digest identically. E20c is the scaling
// story on e19-style out-of-core corpora up to 10^7 vertices: Linial's
// fused word-broadcast rounds under each engine, reporting rounds/sec
// (observational) alongside the exact cross-shard message/bit counts —
// the cut traffic K shards pay that the serial engine never stages.
//
// Cross-shard traffic is engine-private observability (see DESIGN.md
// §11): it is NOT part of RunMetrics and never enters the digest, which
// is exactly why the digest columns can be byte-equal while the traffic
// columns vary with K.
#include "common.hpp"

#include <chrono>
#include <filesystem>

#include <unistd.h>

#include "ldc/arb/list_arbdefective.hpp"
#include "ldc/storage/mapped_graph.hpp"
#include "ldc/storage/registry.hpp"
#include "ldc/storage/stream_gen.hpp"
#include "ldc/support/prf.hpp"

namespace {
using namespace ldc;
namespace sg = storage::gen;

/// Fresh scratch directory for this process's corpus files.
std::filesystem::path scratch_dir() {
  auto dir = std::filesystem::temp_directory_path() /
             ("ldc_e20_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  return dir;
}

struct EngineCfg {
  std::string name;
  Network::Engine engine;
  std::size_t count;  ///< threads (kParallel) or shards (kSharded)
};

// ---- E20a: pipeline digest gate (e14 extended to kSharded). -----------

struct PipelineOut {
  RunMetrics metrics;
  std::uint64_t digest = 0;
  std::uint64_t rounds = 0;
  Coloring phi;
  bool valid = false;
  double wall_ms = 0.0;
};

PipelineOut run_pipeline(harness::ExperimentContext& ctx, const Graph& g,
                         const LdcInstance& inst, const EngineCfg& cfg,
                         const std::string& label) {
  Network net(g);
  ctx.prepare(net);
  net.set_engine(cfg.engine, cfg.count);
  const auto start = std::chrono::steady_clock::now();
  const auto lin = linial::color(net);
  const auto res = arb::solve_list_arbdefective(
      net, inst, lin.phi, lin.palette,
      arb::two_phase_solver(mt::CandidateParams{}), {});
  const auto stop = std::chrono::steady_clock::now();
  ctx.record(label, net);
  PipelineOut out;
  out.metrics = net.metrics();
  out.digest = net.trace() ? net.trace()->digest() : 0;
  out.rounds = res.stats.rounds + lin.rounds;
  out.phi = res.out.colors;
  out.valid = res.valid;
  out.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  return out;
}

// ---- E20b: faulty-round digest gate. ----------------------------------

struct FaultyOut {
  RunMetrics metrics;
  std::uint64_t payload_digest = 0;
  std::uint64_t trace_digest = 0;
};

/// Six explicit exchange rounds under a fault plan, digesting every
/// delivered (receiver, sender, payload) triple in inbox order so
/// drop/corrupt/crash/sleep effects are byte-observable.
FaultyOut run_faulty(const Graph& g, const EngineCfg& cfg,
                     const FaultPlan& plan) {
  Network net(g);
  if (cfg.engine != Network::Engine::kSerial) {
    net.set_engine(cfg.engine, cfg.count);
  }
  Trace trace;
  net.attach_trace(&trace);
  net.attach_faults(&plan);
  FaultyOut out;
  for (std::uint64_t r = 0; r < 6; ++r) {
    std::vector<Network::Outbox> outboxes(g.n());
    for (NodeId u = 0; u < g.n(); ++u) {
      for (NodeId v : g.neighbors(u)) {
        BitWriter w;
        w.write(hash_combine(r, (static_cast<std::uint64_t>(u) << 20) | v),
                40);
        outboxes[u].emplace_back(v, Message::from(w));
      }
    }
    const auto in = net.exchange(outboxes);
    for (NodeId v = 0; v < g.n(); ++v) {
      for (const auto& [sender, msg] : in[v]) {
        auto rd = msg.reader();
        const std::uint64_t item = hash_combine(
            (static_cast<std::uint64_t>(v) << 32) | sender, rd.read(40));
        out.payload_digest =
            service::fnv1a64(&item, sizeof item, out.payload_digest);
      }
    }
  }
  out.metrics = net.metrics();
  out.trace_digest = trace.digest();
  return out;
}

// ---- E20c: out-of-core scaling sweep. ---------------------------------

struct SweepOut {
  std::uint64_t digest = 0;  ///< coloring bytes + palette + total bits
  std::uint32_t rounds = 0;
  bool valid = false;
  double secs = 0.0;
  ShardTraffic traffic;
};

SweepOut run_linial_sweep(const Graph& g, const EngineCfg& cfg) {
  Network net(g);
  if (cfg.engine != Network::Engine::kSerial) {
    net.set_engine(cfg.engine, cfg.count);
  }
  const auto t0 = std::chrono::steady_clock::now();
  const auto res = linial::color(net);
  const auto t1 = std::chrono::steady_clock::now();
  SweepOut out;
  out.digest = service::fnv1a64(res.phi.data(),
                                res.phi.size() * sizeof(res.phi[0]));
  out.digest = service::fnv1a64(&res.palette, sizeof res.palette,
                                out.digest);
  const std::uint64_t bits = net.metrics().total_bits;
  out.digest = service::fnv1a64(&bits, sizeof bits, out.digest);
  out.rounds = res.rounds;
  out.valid = static_cast<bool>(validate_proper(g, res.phi));
  out.secs = std::chrono::duration<double>(t1 - t0).count();
  out.traffic = net.cross_shard_traffic();
  return out;
}

void run(harness::ExperimentContext& ctx) {
  // ---- E20a ------------------------------------------------------------
  const std::uint32_t delta = ctx.smoke() ? 12 : 24;
  const Graph pg = bench::regular_graph(ctx.smoke() ? 128 : 512, delta, 77);
  const LdcInstance inst = delta_plus_one_instance(pg);

  const std::vector<EngineCfg> gate_cfgs = {
      {"serial", Network::Engine::kSerial, 1},
      {"parallel/2", Network::Engine::kParallel, 2},
      {"sharded/1", Network::Engine::kSharded, 1},
      {"sharded/2", Network::Engine::kSharded, 2},
      {"sharded/7", Network::Engine::kSharded, 7},
  };

  auto& gate = ctx.table(
      "E20a: sharded engine equivalence ((Delta+1) pipeline, Delta = " +
          std::to_string(delta) + ", n = " + std::to_string(pg.n()) + ")",
      {"engine", "rounds", "total bits", "trace digest", "matches serial",
       "valid", "wall ms (obs)"});
  PipelineOut serial;
  for (const auto& cfg : gate_cfgs) {
    const auto out = run_pipeline(ctx, pg, inst, cfg,
                                  "pipeline/" + cfg.name);
    const bool first = cfg.engine == Network::Engine::kSerial;
    if (first) serial = out;
    const bool same = out.metrics.same_communication(serial.metrics) &&
                      out.digest == serial.digest &&
                      out.rounds == serial.rounds && out.phi == serial.phi;
    gate.add_row({cfg.name, std::uint64_t{out.rounds},
                  std::uint64_t{out.metrics.total_bits},
                  std::uint64_t{out.digest},
                  std::string(first ? "reference"
                                    : (same ? "ok" : "DIVERGED")),
                  std::string(out.valid ? "ok" : "VIOLATION"),
                  out.wall_ms});
  }

  // ---- E20b ------------------------------------------------------------
  const Graph fg = bench::regular_graph(ctx.smoke() ? 60 : 200, 8, 21);
  std::vector<std::pair<std::string, FaultPlan>> plans;
  {
    FaultPlan p;
    p.seed = 0xfa01;
    p.drop_rate = 0.15;
    plans.push_back({"drop15", p});
  }
  {
    FaultPlan p;
    p.seed = 0xfa02;
    p.corrupt_rate = 0.20;
    plans.push_back({"corrupt20", p});
  }
  {
    FaultPlan p;
    p.seed = 0xfa04;
    p.drop_rate = 0.05;
    p.corrupt_rate = 0.05;
    p.crash_rate = 0.01;
    p.sleep_rate = 0.08;
    p.max_crashes = 4;
    plans.push_back({"mixed", p});
  }
  const std::vector<EngineCfg> fault_cfgs = {
      {"serial", Network::Engine::kSerial, 1},
      {"parallel/2", Network::Engine::kParallel, 2},
      {"sharded/2", Network::Engine::kSharded, 2},
      {"sharded/7", Network::Engine::kSharded, 7},
  };
  auto& faults = ctx.table(
      "E20b: fault-plan equivalence across engines (6 faulty rounds, "
      "8-regular, n = " + std::to_string(fg.n()) + ")",
      {"plan", "engine", "dropped", "corrupted", "crashes", "sleeps",
       "payload digest", "matches serial"});
  for (const auto& [plan_name, plan] : plans) {
    FaultyOut ref;
    for (const auto& cfg : fault_cfgs) {
      const auto out = run_faulty(fg, cfg, plan);
      const bool first = cfg.engine == Network::Engine::kSerial;
      if (first) ref = out;
      const bool same = out.payload_digest == ref.payload_digest &&
                        out.trace_digest == ref.trace_digest &&
                        out.metrics.same_communication(ref.metrics);
      faults.add_row({plan_name, cfg.name, out.metrics.messages_dropped,
                      out.metrics.messages_corrupted,
                      out.metrics.node_crashes, out.metrics.node_sleeps,
                      std::uint64_t{out.payload_digest},
                      std::string(first ? "reference"
                                        : (same ? "ok" : "DIVERGED"))});
    }
  }

  // ---- E20c ------------------------------------------------------------
  // Corpus families from e19 (streaming writer, mmap-backed read path);
  // cross-shard columns are the exact staged cut traffic, zero for the
  // non-sharded engines by construction.
  struct Family {
    std::string tag;
    sg::StreamSpec spec;
  };
  std::vector<Family> families;
  for (std::uint64_t n : ctx.pick<std::vector<std::uint64_t>>(
           {1000000}, {20000})) {
    families.push_back({"ring/" + std::to_string(n), sg::stream_ring(n, 1)});
  }
  for (std::uint64_t n : ctx.pick<std::vector<std::uint64_t>>(
           {1000000, 10000000}, {20000})) {
    families.push_back({"reg16/" + std::to_string(n),
                        sg::stream_random_regular(n, 16, 11)});
  }
  const std::vector<EngineCfg> sweep_cfgs = {
      {"serial", Network::Engine::kSerial, 1},
      {"parallel/7", Network::Engine::kParallel, 7},
      {"sharded/1", Network::Engine::kSharded, 1},
      {"sharded/2", Network::Engine::kSharded, 2},
      {"sharded/7", Network::Engine::kSharded, 7},
  };
  auto& sweep = ctx.table(
      "E20c: sharded scaling on out-of-core corpora (Linial, fused "
      "word-broadcast rounds)",
      {"family", "engine", "rounds", "matches serial", "valid",
       "x-shard msgs", "x-shard bits", "rounds per s (obs)",
       "speedup vs parallel (obs)"});
  const auto dir = scratch_dir();
  for (const auto& fam : families) {
    const auto path = (dir / ("e20_" +
                              std::to_string(&fam - families.data()) +
                              storage::kCorpusExtension))
                          .string();
    sg::write_corpus(fam.spec, path);
    const auto mapped = storage::MappedGraph::open(path);
    const Graph g = mapped->graph();
    SweepOut serial_ref, parallel_ref;
    for (const auto& cfg : sweep_cfgs) {
      const auto out = run_linial_sweep(g, cfg);
      if (cfg.engine == Network::Engine::kSerial) serial_ref = out;
      if (cfg.engine == Network::Engine::kParallel) parallel_ref = out;
      const bool first = cfg.engine == Network::Engine::kSerial;
      const bool same = out.digest == serial_ref.digest &&
                        out.rounds == serial_ref.rounds;
      const double rps = out.secs > 0 ? out.rounds / out.secs : 0.0;
      const double speedup =
          (cfg.engine == Network::Engine::kSharded && out.secs > 0)
              ? parallel_ref.secs / out.secs
              : 0.0;
      sweep.add_row({fam.tag, cfg.name, std::uint64_t{out.rounds},
                     std::string(first ? "reference"
                                       : (same ? "ok" : "DIVERGED")),
                     std::string(out.valid ? "ok" : "VIOLATION"),
                     out.traffic.messages, out.traffic.bits, rps, speedup});
    }
    std::filesystem::remove(path);  // keep the scratch footprint bounded
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

const harness::Registrar reg{{
    .name = "e20_sharded_scaling",
    .claim = "Runtime: the sharded engine reproduces the serial engine's "
             "digests, metrics, colorings and fault decisions exactly at "
             "every shard count, while the scaling sweep reports rounds/s "
             "and the exact cross-shard cut traffic per K on corpora up "
             "to 10^7 vertices",
    .axes = {"engine", "shards", "family", "plan"},
    .run = run,
}};

}  // namespace
