// A3 (ablation) — first-fit vs least-loaded proposals in the arbdefective
// committing greedy (the [BEG18] stand-in).
//
// First-fit fills each class up to the defect budget, producing class
// subgraphs whose outdegree actually approaches delta — the regime the
// Theorem 1.3 machinery is designed for. Least-loaded spreads nodes into
// a near-proper coloring whose classes are almost independent sets (the
// downstream OLDC solver then has nothing to do, which silently
// trivializes experiments). The table quantifies both.
#include "common.hpp"

#include "ldc/arb/beg_arbdefective.hpp"

namespace {
using namespace ldc;

void run(harness::ExperimentContext& ctx) {
  auto& t = ctx.table(
      "A3: arbdefective greedy proposal rule (q*(d+1) ~ 2*Delta)",
      {"Delta", "d", "rule", "rounds", "max same-color outdeg",
       "avg same-color deg", "monochromatic edges"});
  for (std::uint32_t delta :
       ctx.pick<std::vector<std::uint32_t>>({12, 24}, {12})) {
    const Graph g = bench::regular_graph(144, delta, delta + 55);
    for (std::uint32_t d :
         ctx.pick<std::vector<std::uint32_t>>({2, 4}, {2})) {
      const std::uint32_t q = 2 * delta / (d + 1) + 1;
      for (auto rule : {arb::ArbSelection::kFirstFit,
                        arb::ArbSelection::kLeastLoaded}) {
        const std::string rule_name =
            rule == arb::ArbSelection::kFirstFit ? "first-fit"
                                                 : "least-loaded";
        Network net(g);
        ctx.prepare(net);
        arb::ArbdefectiveOptions opt;
        opt.colors = q;
        opt.defect = d;
        opt.selection = rule;
        const auto res = arb::arbdefective_color(net, opt);
        ctx.record("greedy/" + rule_name + "/Delta=" +
                       std::to_string(delta) + "/d=" + std::to_string(d),
                   net);
        std::uint32_t max_out = 0;
        std::uint64_t mono = 0;
        for (NodeId v = 0; v < g.n(); ++v) {
          std::uint32_t same = 0;
          for (NodeId u : res.orientation.out(v)) {
            if (res.phi[u] == res.phi[v]) ++same;
          }
          max_out = std::max(max_out, same);
          for (NodeId u : g.neighbors(v)) {
            if (u > v && res.phi[u] == res.phi[v]) ++mono;
          }
        }
        t.add_row({std::uint64_t{delta}, std::uint64_t{d}, rule_name,
                   std::uint64_t{res.rounds}, std::uint64_t{max_out},
                   2.0 * static_cast<double>(mono) / g.n(), mono});
      }
    }
  }
}

const harness::Registrar reg{{
    .name = "a3_arb_selection",
    .claim = "Ablation: first-fit proposals drive class outdegree toward "
             "the defect budget; least-loaded trivializes the classes",
    .axes = {"Delta", "defect d", "proposal rule"},
    .run = run,
}};

}  // namespace
