// ldc_load: open-loop load generator for a running `ldc_serve --socket`.
//
//   ldc_serve --socket /tmp/ldc.sock --workers 4 &
//   ldc_load --socket /tmp/ldc.sock --rate 500 --duration-ms 2000
//   ldc_load --socket /tmp/ldc.sock --connections 8 --zipf-s 1.2
//            --cancel-every 10 --json
//
// Offered load is open-loop (arrivals never wait for responses), job
// popularity is Zipf-skewed over a hot set to exercise the result cache,
// and every connection drains to "bye" before the report prints — so
// sent/admitted/results always reconcile. Output is a human table by
// default, one JSON object with --json.
#include <clocale>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "load_gen.hpp"

namespace {

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: ldc_load --socket PATH [options]\n"
               "\n"
               "Open-loop load generator for ldc_serve's unix-socket\n"
               "frontend. Reports admission, result mix, goodput and\n"
               "latency percentiles.\n"
               "\n"
               "  --socket PATH       ldc_serve unix socket (required)\n"
               "  --connections N     concurrent sessions (default 4)\n"
               "  --rate R            offered submissions/s, all\n"
               "                      connections together (default 200)\n"
               "  --duration-ms N     send window (default 1000)\n"
               "  --hot-jobs N        distinct jobs in the hot set "
               "(default 32)\n"
               "  --zipf-s S          popularity skew, 0=uniform "
               "(default 1.1)\n"
               "  --cancel-every K    cancel every K-th submission "
               "(default off)\n"
               "  --deadline-every K  deadline on every K-th submission "
               "(default off)\n"
               "  --deadline-ms N     deadline budget (default 5)\n"
               "  --graph-n N         ring size of hot-set jobs "
               "(default 48)\n"
               "  --engine E          shape jobs for the server's engine:\n"
               "                      serial|parallel|sharded|dist; dist\n"
               "                      makes the hot set corpus jobs "
               "(default serial)\n"
               "  --corpus NAME       hot-set corpus (required with "
               "--engine dist)\n"
               "  --seed N            workload seed (default 1)\n"
               "  --json              one JSON object instead of text\n"
               "  --help              this text\n");
}

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_double(const char* s, double& out) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s, &end);
  if (errno != 0 || end == s || *end != '\0') return false;
  out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ldc::bench::LoadOptions opt;
  bool json = false;
  std::uint64_t u = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ldc_load: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    auto need_u64 = [&](std::uint64_t& out) {
      if (!parse_u64(value(), out)) {
        std::fprintf(stderr, "ldc_load: bad %s\n", arg.c_str());
        std::exit(2);
      }
    };
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    }
    if (arg == "--socket") {
      opt.socket_path = value();
    } else if (arg == "--connections") {
      need_u64(u);
      if (u == 0) { std::fprintf(stderr, "ldc_load: bad --connections\n");
                    return 2; }
      opt.connections = u;
    } else if (arg == "--rate") {
      if (!parse_double(value(), opt.rate) || opt.rate <= 0) {
        std::fprintf(stderr, "ldc_load: bad --rate\n");
        return 2;
      }
    } else if (arg == "--duration-ms") {
      need_u64(opt.duration_ms);
    } else if (arg == "--hot-jobs") {
      need_u64(u);
      if (u == 0) { std::fprintf(stderr, "ldc_load: bad --hot-jobs\n");
                    return 2; }
      opt.hot_jobs = u;
    } else if (arg == "--zipf-s") {
      if (!parse_double(value(), opt.zipf_s) || opt.zipf_s < 0) {
        std::fprintf(stderr, "ldc_load: bad --zipf-s\n");
        return 2;
      }
    } else if (arg == "--cancel-every") {
      need_u64(u);
      opt.cancel_every = static_cast<std::uint32_t>(u);
    } else if (arg == "--deadline-every") {
      need_u64(u);
      opt.deadline_every = static_cast<std::uint32_t>(u);
    } else if (arg == "--deadline-ms") {
      need_u64(opt.deadline_ms);
    } else if (arg == "--graph-n") {
      need_u64(u);
      if (u == 0 || u > (1u << 24)) {
        std::fprintf(stderr, "ldc_load: bad --graph-n\n");
        return 2;
      }
      opt.graph_n = static_cast<std::uint32_t>(u);
    } else if (arg == "--engine") {
      opt.engine = value();
      if (opt.engine != "serial" && opt.engine != "parallel" &&
          opt.engine != "sharded" && opt.engine != "dist") {
        std::fprintf(stderr,
                     "ldc_load: --engine serial|parallel|sharded|dist; "
                     "got \"%s\"\n",
                     opt.engine.c_str());
        return 2;
      }
    } else if (arg == "--corpus") {
      opt.corpus = value();
    } else if (arg == "--seed") {
      need_u64(opt.seed);
    } else if (arg == "--json") {
      json = true;
    } else {
      std::fprintf(stderr, "ldc_load: unknown option '%s'\n", arg.c_str());
      usage(stderr);
      return 2;
    }
  }
  if (opt.socket_path.empty()) {
    std::fprintf(stderr, "ldc_load: --socket is required\n");
    usage(stderr);
    return 2;
  }
  if (opt.engine == "dist" && opt.corpus.empty()) {
    std::fprintf(stderr,
                 "ldc_load: --engine dist needs --corpus NAME (the dist "
                 "engine serves only corpus jobs)\n");
    return 2;
  }

  ldc::bench::LoadReport rep;
  try {
    rep = ldc::bench::run_open_loop(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ldc_load: %s\n", e.what());
    return 1;
  }

  if (json) {
    ldc::harness::Json j = ldc::harness::Json::object();
    j.add("offered_rate", opt.rate);
    j.add("connections", std::uint64_t{opt.connections});
    j.add("sent", rep.sent);
    j.add("admitted", rep.admitted);
    j.add("rejected", rep.rejected);
    j.add("results", rep.results);
    j.add("ok", rep.ok);
    j.add("cached", rep.cached);
    j.add("cancelled", rep.cancelled);
    j.add("deadline_missed", rep.deadline_missed);
    j.add("failed", rep.failed);
    j.add("errors", rep.errors);
    j.add("wall_ms", rep.wall_ms);
    j.add("goodput_per_s", rep.goodput);
    j.add("p50_us", rep.p50_us);
    j.add("p99_us", rep.p99_us);
    j.add("p999_us", rep.p999_us);
    j.add("engine", opt.engine);
    ldc::harness::Json per = ldc::harness::Json::array();
    for (std::size_t c = 0; c < rep.per_conn.size(); ++c) {
      ldc::harness::Json pc = ldc::harness::Json::object();
      pc.add("connection", std::uint64_t{c});
      pc.add("sent", rep.per_conn[c].sent);
      pc.add("ok", rep.per_conn[c].ok);
      pc.add("goodput_per_s", rep.per_conn[c].goodput);
      per.push_back(std::move(pc));
    }
    j.add("per_connection", std::move(per));
    std::printf("%s\n", j.dump().c_str());
    return 0;
  }

  std::printf("offered     %.1f/s over %zu connection(s), %llu ms window\n",
              opt.rate, opt.connections,
              static_cast<unsigned long long>(opt.duration_ms));
  std::printf("sent        %llu (admitted %llu, rejected %llu)\n",
              static_cast<unsigned long long>(rep.sent),
              static_cast<unsigned long long>(rep.admitted),
              static_cast<unsigned long long>(rep.rejected));
  std::printf(
      "results     %llu (ok %llu, cached %llu, cancelled %llu, "
      "deadline_missed %llu, failed %llu, protocol errors %llu)\n",
      static_cast<unsigned long long>(rep.results),
      static_cast<unsigned long long>(rep.ok),
      static_cast<unsigned long long>(rep.cached),
      static_cast<unsigned long long>(rep.cancelled),
      static_cast<unsigned long long>(rep.deadline_missed),
      static_cast<unsigned long long>(rep.failed),
      static_cast<unsigned long long>(rep.errors));
  std::printf("goodput     %.1f ok/s over %.1f ms wall\n", rep.goodput,
              rep.wall_ms);
  std::printf("latency     p50 %.0f us, p99 %.0f us, p99.9 %.0f us\n",
              rep.p50_us, rep.p99_us, rep.p999_us);
  std::printf("conn        sent        ok   goodput/s\n");
  for (std::size_t c = 0; c < rep.per_conn.size(); ++c) {
    std::printf("%4zu  %10llu  %8llu  %10.1f\n", c,
                static_cast<unsigned long long>(rep.per_conn[c].sent),
                static_cast<unsigned long long>(rep.per_conn[c].ok),
                rep.per_conn[c].goodput);
  }
  return 0;
}
