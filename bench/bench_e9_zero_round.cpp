// E9 (Table 5) — zero-round solvability of problem P2 (Lemmas 3.1/3.5).
//
// (a) The paper's exact greedy type assignment is run verbatim on a grid
// of tiny parameters; "complete + verified" means every type received a
// candidate family and no two families Psi-conflict — Lemma 3.5's claim.
// (b) The PRF-based construction used at scale is profiled: for random
// type pairs, the fraction of families in Psi(tau', tau)-conflict drops
// steeply with tau, which is the margin the practical solver relies on.
#include "common.hpp"

#include "ldc/mt/candidates.hpp"
#include "ldc/mt/conflict.hpp"
#include "ldc/mt/greedy_types.hpp"
#include "ldc/support/prf.hpp"

namespace {
using namespace ldc;

void run(harness::ExperimentContext& ctx) {
  auto& t1 = ctx.table(
      "E9a: exact greedy type assignment (Lemma 3.5, verbatim)",
      {"|C|", "ell", "k", "k'", "tau", "tau'", "types", "complete",
       "pairwise ok", "families scanned"});
  const std::vector<mt::TinyParams> grid = ctx.pick<
      std::vector<mt::TinyParams>>(
      {
          {6, 4, 2, 2, 2, 2, 2},  // conflicts only on identical sets
          {6, 4, 2, 2, 2, 1, 2},  // stricter tau': single clash forbidden
          {7, 4, 2, 2, 2, 2, 3},  // more initial colors
          {6, 3, 2, 2, 2, 2, 2},  // shorter lists
          {5, 3, 2, 1, 1, 1, 2},  // adversarial: heavy overlap, tiny tau
      },
      {
          {6, 4, 2, 2, 2, 2, 2},
          {5, 3, 2, 1, 1, 1, 2},
      });
  for (const auto& p : grid) {
    const auto a = mt::greedy_assign(p);
    const bool ok = a.complete && mt::verify_pairwise(a, p);
    t1.add_row({std::uint64_t{p.color_space}, std::uint64_t{p.ell},
                std::uint64_t{p.k}, std::uint64_t{p.kprime},
                std::uint64_t{p.tau}, std::uint64_t{p.tau_prime},
                std::uint64_t{a.types.size()},
                std::string(a.complete ? "yes" : "no"),
                std::string(ok ? "yes" : (a.complete ? "NO" : "-")),
                a.scanned});
  }

  const int pairs = ctx.smoke() ? 60 : 300;
  auto& t2 = ctx.table(
      "E9b: PRF families — fraction of random type pairs in "
      "Psi(tau'=2, tau)-conflict (list 96 of |C|=1024, k = 16, k' = 16)",
      {"tau", "conflicting pairs", "of", "fraction"});
  const Prf prf(42);
  const std::uint64_t space = 1024;
  for (std::uint32_t tau :
       ctx.pick<std::vector<std::uint32_t>>({2, 3, 4, 6, 8}, {2, 4})) {
    int conflicts = 0;
    for (int i = 0; i < pairs; ++i) {
      auto mk = [&](std::uint64_t which) {
        auto idx = sample_distinct(
            prf, (static_cast<std::uint64_t>(i) << 20) + (which << 40),
            space, 96);
        std::vector<Color> list(idx.begin(), idx.end());
        return mt::CandidateFamily(mt::type_key(which, list), list, 16, 16);
      };
      const auto a = mk(1);
      const auto b = mk(2);
      if (mt::psi_conflict(a.view(), b.view(), 2, tau, 0)) ++conflicts;
    }
    t2.add_row({std::uint64_t{tau}, std::int64_t{conflicts},
                std::int64_t{pairs},
                static_cast<double>(conflicts) / pairs});
  }
}

const harness::Registrar reg{{
    .name = "e09_zero_round",
    .claim = "Lemmas 3.1/3.5: problem P2 is zero-round solvable; PRF "
             "families' conflict fraction falls steeply with tau",
    .axes = {"tiny-parameter grid", "tau"},
    .run = run,
}};

}  // namespace
