// E12 (Figure 6) — round complexity vs n at fixed Delta.
//
// Theorem 1.4's bound sqrt(Delta) polylog Delta + O(log* n) has only an
// additive, essentially-constant dependence on n. Sweeping n at Delta = 12
// (with ids from a fixed 24-bit space) the pipeline's rounds must stay
// flat while total traffic grows linearly — i.e. the algorithm is *local*.
#include "common.hpp"

#include "ldc/d1lc/congest_colorer.hpp"

namespace {
using namespace ldc;

void run(harness::ExperimentContext& ctx) {
  auto& t = ctx.table(
      "E12: pipeline rounds vs n (Delta = 12, 24-bit ids)",
      {"n", "rounds", "linial rounds", "stages", "total bits",
       "bits per node", "valid"});
  for (std::uint32_t n : ctx.pick<std::vector<std::uint32_t>>(
           {64, 128, 256, 512, 1024}, {64, 128})) {
    const Graph g = bench::regular_graph(n, 12, n);
    const auto [res, metrics] = bench::closed_loop(
        ctx, g, "pipeline/n=" + std::to_string(g.n()),
        [](Network& net, const Graph&, const LdcInstance& inst) {
          return d1lc::color(net, inst);
        });
    t.add_row({std::uint64_t{g.n()}, std::uint64_t{res.rounds},
               std::uint64_t{res.linial_rounds},
               std::uint64_t{res.t13.stages}, metrics.total_bits,
               static_cast<double>(metrics.total_bits) / g.n(),
               std::string(res.valid ? "ok" : "VIOLATION")});
  }
}

const harness::Registrar reg{{
    .name = "e12_n_scaling",
    .claim = "Thm 1.4: rounds have only an additive O(log* n) dependence on "
             "n — flat rounds, linear traffic",
    .axes = {"n"},
    .run = run,
}};

}  // namespace
