// ldc_bench — single CLI over every registered experiment.
//
// The experiment bodies live in the bench_*.cpp translation units compiled
// into this binary; each registers itself via harness::Registrar at static
// initialization. See `ldc_bench --help` for the flag set.
#include "ldc/harness/runner.hpp"

int main(int argc, char** argv) { return ldc::harness::bench_main(argc, argv); }
