// M6 — recovery cost under deterministic fault injection (google-benchmark).
//
// Runs the resilient Linial and d1lc drivers over a sweep of fault rates
// (0% .. 20% per-message drop+corrupt, plus node sleeps at half that rate)
// and reports, via benchmark counters, the recovery cost the repair phase
// pays to restore a valid coloring: extra rounds, recolored nodes, and the
// violation count the faulty run left behind. Wall time is secondary here —
// the counters are the experiment (EXPERIMENTS.md M6): recovery cost should
// grow smoothly with the fault rate and stay zero at rate 0.
//
// All randomness (graph, instance, fault schedule) is PRF-seeded, so every
// iteration of a benchmark repeats the identical faulty execution.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "ldc/coloring/instance_gen.hpp"
#include "ldc/graph/generators.hpp"
#include "ldc/resilient/drivers.hpp"

namespace {

using namespace ldc;

// rate_pct is the drop and corrupt percentage; sleeps run at half of it.
FaultPlan plan_for(std::int64_t rate_pct) {
  FaultPlan p;
  p.seed = 0xfa6e + static_cast<std::uint64_t>(rate_pct);
  p.drop_rate = static_cast<double>(rate_pct) / 100.0;
  p.corrupt_rate = static_cast<double>(rate_pct) / 100.0;
  p.sleep_rate = static_cast<double>(rate_pct) / 200.0;
  return p;
}

void report(benchmark::State& state, const repair::ResilientResult& res) {
  state.counters["valid"] = res.valid ? 1 : 0;
  state.counters["colorer_failed"] = res.colorer_failed ? 1 : 0;
  state.counters["colorer_rounds"] = res.colorer_rounds;
  state.counters["initial_violations"] =
      static_cast<double>(res.initial_violations);
  state.counters["recovery_rounds"] = res.recovery_rounds;
  state.counters["moved_nodes"] = res.moved_nodes;
  state.counters["dropped"] = static_cast<double>(res.metrics.messages_dropped);
  state.counters["corrupted"] =
      static_cast<double>(res.metrics.messages_corrupted);
}

void BM_ResilientLinial(benchmark::State& state) {
  Graph g = gen::gnp(256, 0.05, 29);
  gen::scramble_ids(g, 1 << 20, 7);
  const repair::ResilientOptions opt = [&] {
    repair::ResilientOptions o;
    o.plan = plan_for(state.range(0));
    return o;
  }();
  repair::ResilientResult last;
  for (auto _ : state) {
    Network net(g);
    auto res = resilient::resilient_linial(net, opt);
    last = std::move(res.run);
    benchmark::DoNotOptimize(last.phi.data());
  }
  report(state, last);
}
BENCHMARK(BM_ResilientLinial)->Arg(0)->Arg(2)->Arg(5)->Arg(10)->Arg(20);

void BM_ResilientDefectiveLinial(benchmark::State& state) {
  Graph g = gen::random_regular(256, 8, 31);
  gen::scramble_ids(g, 1 << 20, 11);
  const repair::ResilientOptions opt = [&] {
    repair::ResilientOptions o;
    o.plan = plan_for(state.range(0));
    return o;
  }();
  repair::ResilientResult last;
  for (auto _ : state) {
    Network net(g);
    auto res = resilient::resilient_defective_linial(net, 2, opt);
    last = std::move(res.run);
    benchmark::DoNotOptimize(last.phi.data());
  }
  report(state, last);
}
BENCHMARK(BM_ResilientDefectiveLinial)->Arg(0)->Arg(5)->Arg(10)->Arg(20);

void BM_ResilientD1lc(benchmark::State& state) {
  Graph g = gen::gnp(128, 0.08, 37);
  gen::scramble_ids(g, 1 << 20, 13);
  const LdcInstance inst = delta_plus_one_instance(g);
  const repair::ResilientOptions opt = [&] {
    repair::ResilientOptions o;
    o.plan = plan_for(state.range(0));
    return o;
  }();
  repair::ResilientResult last;
  for (auto _ : state) {
    Network net(g);
    last = resilient::resilient_d1lc(net, inst, opt);
    benchmark::DoNotOptimize(last.phi.data());
  }
  report(state, last);
}
BENCHMARK(BM_ResilientD1lc)->Arg(0)->Arg(5)->Arg(10);

}  // namespace

BENCHMARK_MAIN();
