// E10 (Figure 5) — Lemma 3.6 bucket selection and Lemma 3.8 class
// assignment, observed on random instances.
//
// (a) Bucket pigeonhole: the heaviest gamma-class bucket of each node must
// carry >= 1/h of the node's total weight sum (d+1)^2 — we report the
// worst observed ratio (must be >= 1).
// (b) The two-phase gamma-class histogram and stats: how nodes distribute
// across classes, how many fell into case II / clamped, and whether the
// aux OLDC left class windows within their delta budgets.
#include "common.hpp"

#include <algorithm>
#include <map>

#include "ldc/oldc/gamma.hpp"
#include "ldc/support/math.hpp"

namespace {
using namespace ldc;

void run(harness::ExperimentContext& ctx) {
  auto& t1 = ctx.table(
      "E10a: Lemma 3.6 bucket pigeonhole (worst bucket-mass ratio "
      "h * W(best bucket) / W(total); must be >= 1)",
      {"beta", "max_defect", "h", "worst ratio", "median classes/node"});
  for (std::uint32_t beta :
       ctx.pick<std::vector<std::uint32_t>>({8, 16, 32}, {8, 16})) {
    for (std::uint32_t maxd :
         ctx.pick<std::vector<std::uint32_t>>({1, 3, 7}, {1, 3})) {
      const Graph g = bench::regular_graph(96, beta, beta * 10 + maxd);
      const Orientation orient = Orientation::by_decreasing_id(g);
      const LdcInstance inst = bench::weighted_oriented_instance(
          g, orient, 16ULL * beta * beta, 30.0, maxd, beta + maxd);
      double worst = 1e300;
      std::vector<std::uint64_t> class_counts;
      std::uint32_t h = 1;
      for (NodeId v = 0; v < g.n(); ++v) {
        h = std::max(h, oldc::gamma_class(orient.beta(v), 0, 2));
      }
      for (NodeId v = 0; v < g.n(); ++v) {
        std::map<std::uint32_t, std::uint64_t> buckets;
        std::uint64_t total = 0;
        for (std::size_t i = 0; i < inst.lists[v].size(); ++i) {
          const std::uint64_t w =
              static_cast<std::uint64_t>(inst.lists[v].defects[i] + 1) *
              (inst.lists[v].defects[i] + 1);
          buckets[oldc::gamma_class(orient.beta(v),
                                    inst.lists[v].defects[i], 2)] += w;
          total += w;
        }
        std::uint64_t best = 0;
        for (const auto& [cls, w] : buckets) best = std::max(best, w);
        worst = std::min(
            worst, static_cast<double>(best) * h / static_cast<double>(total));
        class_counts.push_back(buckets.size());
      }
      std::sort(class_counts.begin(), class_counts.end());
      t1.add_row({std::uint64_t{beta}, std::uint64_t{maxd}, std::uint64_t{h},
                  worst, class_counts[class_counts.size() / 2]});
    }
  }

  auto& t2 = ctx.table(
      "E10b: two-phase class assignment stats",
      {"beta", "h", "classes used", "clamped", "pruned colors", "p1_relaxed",
       "valid"});
  for (std::uint32_t beta :
       ctx.pick<std::vector<std::uint32_t>>({8, 16, 32, 64}, {8, 16})) {
    const Graph g = bench::regular_graph(std::max(64u, 3 * beta), beta,
                                         500 + beta);
    const Orientation orient = Orientation::by_decreasing_id(g);
    const LdcInstance inst = bench::weighted_oriented_instance(
        g, orient, 32ULL * beta * beta, 40.0, std::max(1u, beta / 4),
        beta * 3);
    Network net(g);
    ctx.prepare(net);
    const auto run = bench::two_phase_after_linial(net, inst, orient);
    ctx.record("two-phase/beta=" + std::to_string(beta), net);
    const auto check = validate_oldc(inst, orient, run.res.phi);
    t2.add_row({std::uint64_t{beta}, std::uint64_t{run.res.stats.h},
                std::uint64_t{run.res.stats.h},  // classes available
                std::uint64_t{run.res.stats.clamped_classes},
                std::uint64_t{run.res.stats.pruned_colors},
                std::uint64_t{run.res.stats.p1_relaxed},
                bench::verdict(check)});
  }
}

const harness::Registrar reg{{
    .name = "e10_gamma_classes",
    .claim = "Lemmas 3.6/3.8: gamma-class bucket pigeonhole holds and the "
             "two-phase class assignment stays within delta budgets",
    .axes = {"beta", "max_defect"},
    .run = run,
}};

}  // namespace
