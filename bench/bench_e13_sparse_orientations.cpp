// E13 (Figure 7) — low-outdegree orientations on sparse graphs: the
// [BE10]/arboricity angle of the paper's Section 1.
//
// Oriented algorithms cost O(log beta), and on sparse graphs beta can be
// made ~degeneracy << Delta by orienting along a (distributed) peeling
// order. The table contrasts, per graph family: Delta, the exact
// degeneracy, the distributed peeling's beta and rounds, and the
// two-phase OLDC solver's gamma-class count h under an id orientation
// (h ~ log Delta-ish) vs. the peeling orientation (h ~ log degeneracy).
#include "common.hpp"

#include "ldc/arb/degeneracy.hpp"
#include "ldc/graph/builder.hpp"
#include "ldc/oldc/two_phase.hpp"

int main() {
  using namespace ldc;
  Table t("E13: orientation quality on sparse graphs",
          {"graph", "Delta", "degeneracy", "peel beta", "peel rounds",
           "h (id orient)", "h (peel orient)", "valid"});
  struct Fam {
    std::string name;
    Graph g;
  };
  std::vector<Fam> fams;
  {
    Graph g = gen::random_tree(300, 2);
    gen::scramble_ids(g, 1 << 22, 3);
    fams.push_back({"tree n=300", std::move(g)});
  }
  {
    Graph g = gen::power_law(300, 2.3, 4.0, 5);
    gen::scramble_ids(g, 1 << 22, 6);
    fams.push_back({"power-law", std::move(g)});
  }
  {
    // Star-of-paths: Delta = 100, degeneracy 2.
    GraphBuilder b(301);
    for (std::uint32_t v = 1; v <= 100; ++v) b.add_edge(0, v);
    for (std::uint32_t v = 1; v + 100 <= 300; ++v) {
      b.add_edge(v, v + 100);
      if (v + 200 <= 300) b.add_edge(v + 100, v + 200);
    }
    Graph g = b.build();
    gen::scramble_ids(g, 1 << 22, 9);
    fams.push_back({"hub+paths", std::move(g)});
  }

  for (auto& fam : fams) {
    const Graph& g = fam.g;
    const auto exact = degeneracy_orientation(g);
    Network peel_net(g);
    const auto peel = distributed_peeling_orientation(peel_net, 1.0);

    auto run_h = [&](const Orientation& orient, bool* ok) {
      RandomLdcParams p;
      p.color_space = 1 << 20;
      p.one_plus_nu = 2.0;
      p.kappa = 40.0;
      p.max_defect = std::max(2u, orient.max_beta() / 4);
      p.seed = 99;
      const LdcInstance inst =
          random_weighted_oriented_instance(g, orient, p);
      Network net(g);
      const auto lin = linial::color(net);
      oldc::TwoPhaseInput in;
      in.inst = &inst;
      in.orientation = &orient;
      in.initial = &lin.phi;
      in.m = lin.palette;
      const auto res = oldc::solve_two_phase(net, in);
      *ok = validate_oldc(inst, orient, res.phi).ok;
      return res.stats.h;
    };
    const Orientation by_id = Orientation::by_decreasing_id(g);
    bool ok1 = false, ok2 = false;
    const auto h_id = run_h(by_id, &ok1);
    const auto h_peel = run_h(peel.orientation, &ok2);
    t.add_row({fam.name, std::uint64_t{g.max_degree()},
               std::uint64_t{exact.degeneracy}, std::uint64_t{peel.beta},
               std::uint64_t{peel.rounds}, std::uint64_t{h_id},
               std::uint64_t{h_peel},
               std::string((ok1 && ok2) ? "ok" : "VIOLATION")});
  }
  t.print(std::cout);
  return 0;
}
