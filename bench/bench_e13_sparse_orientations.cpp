// E13 (Figure 7) — low-outdegree orientations on sparse graphs: the
// [BE10]/arboricity angle of the paper's Section 1.
//
// Oriented algorithms cost O(log beta), and on sparse graphs beta can be
// made ~degeneracy << Delta by orienting along a (distributed) peeling
// order. The table contrasts, per graph family: Delta, the exact
// degeneracy, the distributed peeling's beta and rounds, and the
// two-phase OLDC solver's gamma-class count h under an id orientation
// (h ~ log Delta-ish) vs. the peeling orientation (h ~ log degeneracy).
#include "common.hpp"

#include "ldc/arb/degeneracy.hpp"
#include "ldc/graph/builder.hpp"

namespace {
using namespace ldc;

void run(harness::ExperimentContext& ctx) {
  auto& t = ctx.table(
      "E13: orientation quality on sparse graphs",
      {"graph", "Delta", "degeneracy", "peel beta", "peel rounds",
       "h (id orient)", "h (peel orient)", "valid"});
  struct Fam {
    std::string name;
    Graph g;
  };
  const std::uint32_t n = ctx.smoke() ? 120 : 300;
  std::vector<Fam> fams;
  fams.push_back(
      {"tree n=" + std::to_string(n),
       bench::scrambled(gen::random_tree(n, 2), 3, 22)});
  fams.push_back(
      {"power-law", bench::scrambled(gen::power_law(n, 2.3, 4.0, 5), 6, 22)});
  {
    // Star-of-paths: hub degree ~n/3, degeneracy 2.
    const std::uint32_t hub = n / 3;
    GraphBuilder b(n + 1);
    for (std::uint32_t v = 1; v <= hub; ++v) b.add_edge(0, v);
    for (std::uint32_t v = 1; v + hub <= n; ++v) {
      b.add_edge(v, v + hub);
      if (v + 2 * hub <= n) b.add_edge(v + hub, v + 2 * hub);
    }
    fams.push_back({"hub+paths", bench::scrambled(b.build(), 9, 22)});
  }

  for (auto& fam : fams) {
    const Graph& g = fam.g;
    const auto exact = degeneracy_orientation(g);
    Network peel_net(g);
    ctx.prepare(peel_net);
    const auto peel = distributed_peeling_orientation(peel_net, 1.0);
    ctx.record("peeling/" + fam.name, peel_net);

    auto run_h = [&](const Orientation& orient, const std::string& label,
                     bool* ok) {
      const LdcInstance inst = bench::weighted_oriented_instance(
          g, orient, 1 << 20, 40.0, std::max(2u, orient.max_beta() / 4), 99);
      Network net(g);
      ctx.prepare(net);
      const auto run = bench::two_phase_after_linial(net, inst, orient);
      ctx.record(label + "/" + fam.name, net);
      *ok = validate_oldc(inst, orient, run.res.phi).ok;
      return run.res.stats.h;
    };
    const Orientation by_id = Orientation::by_decreasing_id(g);
    bool ok1 = false, ok2 = false;
    const auto h_id = run_h(by_id, "two-phase-id", &ok1);
    const auto h_peel = run_h(peel.orientation, "two-phase-peel", &ok2);
    t.add_row({fam.name, std::uint64_t{g.max_degree()},
               std::uint64_t{exact.degeneracy}, std::uint64_t{peel.beta},
               std::uint64_t{peel.rounds}, std::uint64_t{h_id},
               std::uint64_t{h_peel},
               std::string((ok1 && ok2) ? "ok" : "VIOLATION")});
  }
}

const harness::Registrar reg{{
    .name = "e13_sparse_orientations",
    .claim = "[BE10] angle: peeling orientations push beta to ~degeneracy, "
             "shrinking the O(log beta) gamma-class count on sparse graphs",
    .axes = {"graph family", "orientation"},
    .run = run,
}};

}  // namespace
