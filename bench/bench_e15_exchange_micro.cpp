// E15 (harness) — exchange-plane micro-benchmark: the zero-copy round.
//
// The simulator's hot loop is Network::exchange_broadcast(); this
// experiment pins down what the zero-copy message plane buys there, per
// topology (ring / random-regular / clique), engine (serial / parallel)
// and model (LOCAL / CONGEST). Deterministic columns: the per-round
// traffic and the serial steady-state allocation verdict — the committed
// baseline therefore *enforces* that a steady-state serial round performs
// zero heap allocations (payloads are shared handles, the arena reuses
// its buffers, no trace is attached to the timing network). Observational
// columns report rounds/sec and the measured allocation counts/bytes.
//
// This TU also carries the binary-wide operator new/delete replacement
// that implements the counters. It is malloc-backed and counting-only, so
// every other experiment in ldc_bench is unaffected beyond two relaxed
// atomic increments per allocation.
#include "common.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>

namespace ldc::bench {

std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

namespace {
void count_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
}
}  // namespace
}  // namespace ldc::bench

void* operator new(std::size_t size) {
  ldc::bench::count_alloc(size);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ldc::bench::count_alloc(size);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return ::operator new(size, std::nothrow);
}
void* operator new(std::size_t size, std::align_val_t al) {
  ldc::bench::count_alloc(size);
  const std::size_t a = static_cast<std::size_t>(al);
  const std::size_t rounded = (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded == 0 ? a : rounded)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return ::operator new(size, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {
using namespace ldc;

struct Topo {
  std::string name;
  Graph g;
  int payload_bits;
};

struct Probe {
  double rounds_per_sec = 0.0;
  std::uint64_t allocs_per_round = 0;
  std::uint64_t bytes_per_round = 0;
};

// Times `timed_rounds` steady-state broadcast rounds (after a warm-up that
// sizes the arena) and measures the heap traffic they cause. No trace is
// attached: this is the bare hot loop.
Probe time_broadcast(const Graph& g, int payload_bits, bool parallel,
                     std::size_t threads, bool congest,
                     std::uint64_t timed_rounds) {
  Network net(g, congest ? static_cast<std::size_t>(payload_bits) : 0);
  if (parallel) net.set_engine(Network::Engine::kParallel, threads);
  const std::vector<Message> msgs =
      bench::uniform_broadcast(g.n(), 0x5eed, payload_bits);
  for (int i = 0; i < 3; ++i) net.exchange_broadcast(msgs);  // warm up
  const std::uint64_t allocs0 =
      bench::g_alloc_count.load(std::memory_order_relaxed);
  const std::uint64_t bytes0 =
      bench::g_alloc_bytes.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < timed_rounds; ++i) {
    net.exchange_broadcast(msgs);
  }
  const auto t1 = std::chrono::steady_clock::now();
  Probe p;
  p.rounds_per_sec = static_cast<double>(timed_rounds) /
                     std::chrono::duration<double>(t1 - t0).count();
  p.allocs_per_round =
      (bench::g_alloc_count.load(std::memory_order_relaxed) - allocs0) /
      timed_rounds;
  p.bytes_per_round =
      (bench::g_alloc_bytes.load(std::memory_order_relaxed) - bytes0) /
      timed_rounds;
  return p;
}

void run(harness::ExperimentContext& ctx) {
  std::vector<Topo> topos;
  topos.push_back({"ring", gen::ring(ctx.pick<std::uint32_t>(4096, 512)),
                   32});
  topos.push_back({"random-regular",
                   gen::random_regular(ctx.pick<std::uint32_t>(1024, 256),
                                       16, 7),
                   32});
  topos.push_back({"clique", gen::clique(ctx.pick<std::uint32_t>(256, 64)),
                   64});
  const std::size_t par_threads = ctx.pick<std::size_t>(4, 2);
  const std::uint64_t timed_rounds = ctx.pick<std::uint64_t>(200, 40);

  auto& t = ctx.table(
      "E15: exchange_broadcast micro (zero-copy plane; " +
          std::to_string(timed_rounds) + " steady-state rounds/config)",
      {"topology", "engine", "model", "messages/round", "bits/round",
       "steady-state alloc", "rounds/s (obs)", "allocs/round (obs)",
       "bytes/round (obs)"});

  for (const Topo& topo : topos) {
    for (const bool parallel : {false, true}) {
      for (const bool congest : {false, true}) {
        const std::string engine =
            parallel ? "parallel/" + std::to_string(par_threads) : "serial";
        const std::string model = congest ? "CONGEST" : "LOCAL";
        const std::string label =
            topo.name + "/" + engine + "/" + model;

        // Deterministic leg: a prepared (traced) network records the
        // model-exact traffic and digest for the baseline gate.
        Network net(topo.g,
                    congest ? static_cast<std::size_t>(topo.payload_bits)
                            : 0);
        ctx.prepare(net);
        if (parallel) net.set_engine(Network::Engine::kParallel, par_threads);
        const std::vector<Message> msgs = bench::uniform_broadcast(
            topo.g.n(), 0x5eed, topo.payload_bits);
        for (int i = 0; i < 2; ++i) net.exchange_broadcast(msgs);
        ctx.record(label, net);
        const std::uint64_t msgs_per_round = net.metrics().messages / 2;
        const std::uint64_t bits_per_round = net.metrics().total_bits / 2;

        // Timing leg: bare networks, no trace. The serial verdict is a
        // deterministic column — the baseline fails if a steady-state
        // serial round ever allocates again.
        const Probe p = time_broadcast(topo.g, topo.payload_bits, parallel,
                                       par_threads, congest, timed_rounds);
        const std::string alloc_verdict =
            parallel ? "n/a"
                     : (p.allocs_per_round == 0
                            ? "none"
                            : "ALLOC(" +
                                  std::to_string(p.allocs_per_round) + ")");
        t.add_row({topo.name, engine, model, msgs_per_round, bits_per_round,
                   alloc_verdict, p.rounds_per_sec,
                   std::uint64_t{p.allocs_per_round},
                   std::uint64_t{p.bytes_per_round}});
      }
    }
  }
}

const harness::Registrar reg{{
    .name = "e15_exchange_micro",
    .claim = "Perf: the zero-copy message plane makes a steady-state serial "
             "broadcast round allocation-free and lifts exchange rounds/sec "
             "across topologies, engines, and models",
    .axes = {"topology", "engine", "model"},
    .run = run,
}};

}  // namespace
