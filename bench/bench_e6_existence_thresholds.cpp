// E6 (Table 4) — tightness of the existence lemmas A.1 / A.2.
//
// Lemma A.1: a list defective coloring exists when sum (d_v(x)+1) > deg;
// Lemma A.2: arbdefective when sum (2 d_v(x)+1) > deg; both tight on the
// clique K_{Delta+1} with identical lists. The table probes exactly at,
// just above, and just below the thresholds on cliques, then samples
// random heterogeneous instances at the boundary.
#include "common.hpp"

#include "ldc/sequential/list_arbdefective.hpp"
#include "ldc/sequential/list_defective.hpp"

namespace {
using namespace ldc;

void run(harness::ExperimentContext& ctx) {
  auto& t1 = ctx.table(
      "E6a: uniform d-defective c-coloring on K_{c(d+1)+delta}  "
      "(threshold c(d+1) > Delta)",
      {"c", "d", "clique size", "c(d+1)", "Delta", "condition",
       "solver result"});
  for (std::uint32_t c :
       ctx.pick<std::vector<std::uint32_t>>({2, 3, 5}, {2, 3})) {
    for (std::uint32_t d :
         ctx.pick<std::vector<std::uint32_t>>({0, 1, 3}, {0, 1})) {
      for (int offset : {0, 1}) {
        // clique of size c(d+1)+offset: Delta = c(d+1)+offset-1.
        const std::uint32_t size = c * (d + 1) + offset;
        if (size < 2) continue;
        const Graph g = gen::clique(size);
        const LdcInstance inst = uniform_defective_instance(g, c, d);
        const bool cond = sequential::satisfies_ldc_condition(inst);
        const auto phi = sequential::solve_list_defective(inst);
        const bool solved = phi.has_value() && validate_ldc(inst, *phi).ok;
        t1.add_row({std::uint64_t{c}, std::uint64_t{d}, std::uint64_t{size},
                    std::uint64_t{c * (d + 1)}, std::uint64_t{size - 1},
                    std::string(cond ? "holds" : "fails"),
                    std::string(solved ? "solved" : "unsolved")});
      }
    }
  }

  auto& t2 = ctx.table(
      "E6b: uniform d-arbdefective c-coloring on cliques  "
      "(threshold c(2d+1) > Delta)",
      {"c", "d", "clique size", "c(2d+1)", "condition", "solver result"});
  for (std::uint32_t c : {2u, 3u}) {
    for (std::uint32_t d :
         ctx.pick<std::vector<std::uint32_t>>({1, 2}, {1})) {
      for (int offset : {0, 1}) {
        const std::uint32_t size = c * (2 * d + 1) + offset;
        const Graph g = gen::clique(size);
        const LdcInstance inst = uniform_defective_instance(g, c, d);
        const bool cond = sequential::satisfies_arb_condition(inst);
        const auto out = sequential::solve_list_arbdefective(inst);
        const bool solved =
            out.has_value() && validate_arbdefective(inst, *out).ok;
        t2.add_row({std::uint64_t{c}, std::uint64_t{d}, std::uint64_t{size},
                    std::uint64_t{c * (2 * d + 1)},
                    std::string(cond ? "holds" : "fails"),
                    std::string(solved ? "solved" : "unsolved")});
      }
    }
  }

  const int trials = ctx.smoke() ? 6 : 20;
  auto& t3 = ctx.table(
      "E6c: random heterogeneous lists at the Lemma A.1 boundary  "
      "(success rate over " + std::to_string(trials) +
          " seeds, G(48, 0.25))",
      {"kappa (weight/deg)", "condition holds", "solved", "of",
       "steps<=3|E|+n"});
  for (double kappa :
       ctx.pick<std::vector<double>>({1.05, 1.5, 2.5}, {1.05, 2.5})) {
    int holds = 0, solved = 0, bounded = 0;
    for (int s = 0; s < trials; ++s) {
      const Graph g = gen::gnp(48, 0.25, 1000 + s);
      RandomLdcParams p;
      p.color_space = 256;
      p.one_plus_nu = 1.0;
      p.kappa = kappa;
      p.max_defect = 2;
      p.seed = 2000 + s;
      const LdcInstance inst = random_weighted_instance(g, p);
      if (sequential::satisfies_ldc_condition(inst)) ++holds;
      sequential::RecolorStats stats;
      const auto phi = sequential::solve_list_defective(inst, &stats);
      if (phi.has_value() && validate_ldc(inst, *phi).ok) ++solved;
      if (stats.steps <= 3 * g.m() + g.n()) ++bounded;
    }
    t3.add_row({kappa, std::int64_t{holds}, std::int64_t{solved},
                std::int64_t{trials}, std::int64_t{bounded}});
  }
}

const harness::Registrar reg{{
    .name = "e06_existence_thresholds",
    .claim = "Lemmas A.1/A.2: existence thresholds sum(d+1) > deg and "
             "sum(2d+1) > deg are tight on cliques",
    .axes = {"colors c", "defect d", "kappa"},
    .run = run,
}};

}  // namespace
