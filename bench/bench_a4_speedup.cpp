// A4 (ablation) — Corollary 4.1's balanced parameterization.
//
// When the base solver's cost grows with the list size, Corollary 4.1
// picks p = 2^Theta(sqrt(log beta log kappa)) to balance per-level cost
// against the level count log_p |C|. We compare: direct solve, the
// balanced p, and deliberately unbalanced choices (p too small = many
// levels, p too large = one expensive level), reporting rounds and the
// per-level list sizes the base solver faced.
#include "common.hpp"

#include "ldc/reduction/color_space.hpp"
#include "ldc/reduction/speedup.hpp"

namespace {
using namespace ldc;

void run(harness::ExperimentContext& ctx) {
  const std::uint32_t beta = ctx.smoke() ? 8 : 16;
  const std::uint64_t space = ctx.smoke() ? (1 << 10) : (1 << 14);
  const Graph g = bench::regular_graph(ctx.smoke() ? 64 : 96, beta, 66);
  const Orientation orient = Orientation::by_decreasing_id(g);
  const LdcInstance inst =
      bench::weighted_oriented_instance(g, orient, space, 50.0, 5, 67);
  const reduction::OldcSolver base = bench::multi_defect_solver();

  const std::uint64_t balanced =
      reduction::speedup_subspace_count(beta, 8.0, space);
  auto& t = ctx.table(
      "A4: Corollary 4.1 parameter balance (|C| = " + std::to_string(space) +
          ", beta = " + std::to_string(beta) + ")",
      {"p", "how chosen", "levels", "rounds", "max msg bits", "valid"});
  struct Choice {
    std::uint64_t p;
    std::string label;
  };
  const std::vector<Choice> choices = {
      {0, "direct (no reduction)"},
      {2, "p too small"},
      {balanced, "Cor 4.1 balanced"},
      {space / 4, "p too large"},
  };
  for (const auto& [p, label] : choices) {
    Network net(g);
    ctx.prepare(net);
    const auto lin = linial::color(net);
    reduction::Options opt;
    opt.p = p;
    const auto res = reduction::reduce_and_solve(net, inst, orient, lin.phi,
                                                 lin.palette, opt, base);
    ctx.record("reduce/p=" + std::to_string(p), net);
    const auto check = validate_oldc(inst, orient, res.phi);
    t.add_row({p, label, std::uint64_t{res.levels},
               std::uint64_t{res.stats.rounds},
               std::uint64_t{net.metrics().max_message_bits},
               bench::verdict(check)});
  }
}

const harness::Registrar reg{{
    .name = "a4_speedup",
    .claim = "Ablation (Cor 4.1): balanced subspace count p beats both "
             "too-small and too-large choices",
    .axes = {"subspace count p"},
    .run = run,
}};

}  // namespace
