// A4 (ablation) — Corollary 4.1's balanced parameterization.
//
// When the base solver's cost grows with the list size, Corollary 4.1
// picks p = 2^Theta(sqrt(log beta log kappa)) to balance per-level cost
// against the level count log_p |C|. We compare: direct solve, the
// balanced p, and deliberately unbalanced choices (p too small = many
// levels, p too large = one expensive level), reporting rounds and the
// per-level list sizes the base solver faced.
#include "common.hpp"

#include "ldc/oldc/multi_defect.hpp"
#include "ldc/reduction/color_space.hpp"
#include "ldc/reduction/speedup.hpp"

int main() {
  using namespace ldc;
  const std::uint32_t beta = 16;
  const Graph g = bench::regular_graph(96, beta, 66);
  const Orientation orient = Orientation::by_decreasing_id(g);
  RandomLdcParams ip;
  ip.color_space = 1 << 14;
  ip.one_plus_nu = 2.0;
  ip.kappa = 50.0;
  ip.max_defect = 5;
  ip.seed = 67;
  const LdcInstance inst = random_weighted_oriented_instance(g, orient, ip);

  mt::CandidateParams params;
  const reduction::OldcSolver base =
      [&params](Network& net, const LdcInstance& i, const Orientation& o,
                const Coloring& init, std::uint64_t m) {
        oldc::MultiDefectInput in;
        in.inst = &i;
        in.orientation = &o;
        in.initial = &init;
        in.m = m;
        in.params = params;
        return oldc::solve_multi_defect(net, in);
      };

  const std::uint64_t balanced =
      reduction::speedup_subspace_count(beta, 8.0, ip.color_space);
  Table t("A4: Corollary 4.1 parameter balance (|C| = 16384, beta = 16)",
          {"p", "how chosen", "levels", "rounds", "max msg bits", "valid"});
  struct Choice {
    std::uint64_t p;
    std::string label;
  };
  const std::vector<Choice> choices = {
      {0, "direct (no reduction)"},
      {2, "p too small"},
      {balanced, "Cor 4.1 balanced"},
      {4096, "p too large"},
  };
  for (const auto& [p, label] : choices) {
    Network net(g);
    const auto lin = linial::color(net);
    reduction::Options opt;
    opt.p = p;
    const auto res = reduction::reduce_and_solve(net, inst, orient, lin.phi,
                                                 lin.palette, opt, base);
    const auto check = validate_oldc(inst, orient, res.phi);
    t.add_row({p, label, std::uint64_t{res.levels},
               std::uint64_t{res.stats.rounds},
               std::uint64_t{net.metrics().max_message_bits},
               bench::verdict(check)});
  }
  t.print(std::cout);
  return 0;
}
