// E7 (Figure 3) — Linial's algorithm: rounds vs. n / identifier space.
//
// [Lin87]: O(Delta^2)-coloring in O(log* n) rounds. Shape: at fixed Delta
// the round count is essentially flat in n (it tracks log* of the id
// space), and the final palette is independent of n.
#include "common.hpp"

#include "ldc/support/math.hpp"

namespace {
using namespace ldc;

void run(harness::ExperimentContext& ctx) {
  auto& t = ctx.table("E7: Linial rounds vs n on rings (Delta = 2)",
                      {"n", "id space", "rounds", "palette", "log*(ids)",
                       "valid"});
  for (std::uint32_t logn : ctx.pick<std::vector<std::uint32_t>>(
           {8, 10, 12, 14, 16}, {8, 10})) {
    const std::uint32_t n = 1u << logn;
    for (std::uint64_t id_bits :
         {static_cast<std::uint64_t>(logn), std::uint64_t{32},
          std::uint64_t{48}}) {
      Graph g = gen::ring(n);
      if (id_bits > logn) {
        gen::scramble_ids(g, 1ULL << id_bits, logn * 100 + id_bits);
      }
      Network net(g);
      ctx.prepare(net);
      const auto res = linial::color(net);
      ctx.record("ring/n=" + std::to_string(g.n()) +
                     "/ids=" + std::to_string(id_bits),
                 net);
      const auto check = validate_proper(g, res.phi);
      t.add_row({std::uint64_t{g.n()}, std::uint64_t{1} << id_bits,
                 std::uint64_t{res.rounds}, res.palette,
                 std::int64_t{log_star(1ULL << id_bits)},
                 bench::verdict(check)});
    }
  }

  auto& t2 = ctx.table("E7b: Linial palette vs Delta (rounds stay ~log*)",
                       {"Delta", "n", "rounds", "palette", "16*Delta^2",
                        "valid"});
  for (std::uint32_t delta : ctx.pick<std::vector<std::uint32_t>>(
           {4, 8, 16, 32}, {4, 8})) {
    const Graph g = bench::regular_graph(std::max(128u, 4 * delta), delta,
                                         delta + 41);
    Network net(g);
    ctx.prepare(net);
    const auto res = linial::color(net);
    ctx.record("regular/Delta=" + std::to_string(delta), net);
    const auto check = validate_proper(g, res.phi);
    t2.add_row({std::uint64_t{delta}, std::uint64_t{g.n()},
                std::uint64_t{res.rounds}, res.palette,
                std::uint64_t{16} * delta * delta, bench::verdict(check)});
  }
}

const harness::Registrar reg{{
    .name = "e07_logstar",
    .claim = "[Lin87]: O(Delta^2)-coloring in O(log* n) rounds — flat in n, "
             "palette independent of n",
    .axes = {"n", "id space bits", "Delta"},
    .run = run,
}};

}  // namespace
