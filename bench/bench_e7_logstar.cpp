// E7 (Figure 3) — Linial's algorithm: rounds vs. n / identifier space.
//
// [Lin87]: O(Delta^2)-coloring in O(log* n) rounds. Shape: at fixed Delta
// the round count is essentially flat in n (it tracks log* of the id
// space), and the final palette is independent of n.
#include "common.hpp"

#include "ldc/support/math.hpp"

int main() {
  using namespace ldc;
  Table t("E7: Linial rounds vs n on rings (Delta = 2)",
          {"n", "id space", "rounds", "palette", "log*(ids)", "valid"});
  for (std::uint32_t logn : {8u, 10u, 12u, 14u, 16u}) {
    const std::uint32_t n = 1u << logn;
    for (std::uint64_t id_bits :
         {static_cast<std::uint64_t>(logn), std::uint64_t{32},
          std::uint64_t{48}}) {
      Graph g = gen::ring(n);
      if (id_bits > logn) {
        gen::scramble_ids(g, 1ULL << id_bits, logn * 100 + id_bits);
      }
      Network net(g);
      const auto res = linial::color(net);
      const auto check = validate_proper(g, res.phi);
      t.add_row({std::uint64_t{n}, std::uint64_t{1} << id_bits,
                 std::uint64_t{res.rounds}, res.palette,
                 std::int64_t{log_star(1ULL << id_bits)},
                 bench::verdict(check)});
    }
  }
  t.print(std::cout);

  Table t2("E7b: Linial palette vs Delta (rounds stay ~log*)",
           {"Delta", "n", "rounds", "palette", "16*Delta^2", "valid"});
  for (std::uint32_t delta : {4u, 8u, 16u, 32u}) {
    const Graph g = bench::regular_graph(std::max(128u, 4 * delta), delta,
                                         delta + 41);
    Network net(g);
    const auto res = linial::color(net);
    const auto check = validate_proper(g, res.phi);
    t2.add_row({std::uint64_t{delta}, std::uint64_t{g.n()},
                std::uint64_t{res.rounds}, res.palette,
                std::uint64_t{16} * delta * delta, bench::verdict(check)});
  }
  t2.print(std::cout);
  return 0;
}
