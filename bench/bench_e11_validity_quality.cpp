// E11 (Table 6) — end-to-end validity and quality across the whole stack.
//
// Every algorithm x graph family x seed must produce a *valid* coloring;
// the table also records round counts, repair activity (expected ~0 — the
// safety net should stay idle), and color counts. This is the experiment
// that backs the library's headline invariant.
#include "common.hpp"

#include <functional>
#include <tuple>

#include "ldc/baselines/color_reduction.hpp"
#include "ldc/baselines/greedy.hpp"
#include "ldc/baselines/kw_reduction.hpp"
#include "ldc/baselines/luby.hpp"
#include "ldc/d1lc/congest_colorer.hpp"
#include "ldc/repair/repair.hpp"

namespace {
using namespace ldc;

void run(harness::ExperimentContext& ctx) {
  const std::uint64_t seeds = ctx.smoke() ? 2 : 3;
  auto& t = ctx.table(
      "E11: validity & quality matrix ((Delta+1) instances, " +
          std::to_string(seeds) + " seeds each)",
      {"graph", "Delta", "algorithm", "valid/" + std::to_string(seeds),
       "avg rounds", "avg colors", "repair rounds (in-solve)"});

  struct Family {
    std::string name;
    std::function<Graph(std::uint64_t)> make;
  };
  std::vector<Family> families = {
      {"regular d=12",
       [](std::uint64_t s) { return bench::regular_graph(120, 12, s); }},
      {"gnp p=0.1",
       [](std::uint64_t s) {
         return bench::scrambled(gen::gnp(120, 0.1, s), s + 7);
       }},
      {"power-law",
       [](std::uint64_t s) {
         return bench::scrambled(gen::power_law(150, 2.5, 6.0, s), s + 7);
       }},
      {"torus 12x10",
       [](std::uint64_t s) {
         return bench::scrambled(gen::torus(12, 10), s + 7);
       }},
      {"tree",
       [](std::uint64_t s) {
         return bench::scrambled(gen::random_tree(150, s), s + 7);
       }},
  };
  if (ctx.smoke()) families.resize(2);

  for (const auto& fam : families) {
    struct Algo {
      std::string name;
      // returns (valid, rounds, colors, repair_tail)
      std::function<std::tuple<bool, std::uint64_t, std::uint64_t,
                               std::uint64_t>(Network&, const Graph&,
                                              const LdcInstance&)>
          run;
    };
    const std::vector<Algo> algos = {
        {"pipeline(Thm1.4)",
         [](Network& net, const Graph& g, const LdcInstance& inst) {
           const auto r = d1lc::color(net, inst);
           return std::make_tuple(r.valid && validate_proper(g, r.phi).ok,
                                  std::uint64_t{r.rounds},
                                  std::uint64_t{colors_used(r.phi)},
                                  std::uint64_t{r.t13.repair_rounds});
         }},
        {"one-class",
         [](Network& net, const Graph&, const LdcInstance& inst) {
           const auto r = baselines::linial_then_reduce(net, inst);
           return std::make_tuple(validate_ldc(inst, r.phi).ok,
                                  std::uint64_t{r.rounds},
                                  std::uint64_t{colors_used(r.phi)},
                                  std::uint64_t{0});
         }},
        {"KW-batched",
         [](Network& net, const Graph& g, const LdcInstance&) {
           const auto r = baselines::linial_then_kw(net);
           return std::make_tuple(validate_proper(g, r.phi).ok,
                                  std::uint64_t{r.rounds},
                                  std::uint64_t{colors_used(r.phi)},
                                  std::uint64_t{0});
         }},
        {"Luby",
         [](Network& net, const Graph&, const LdcInstance& inst) {
           const auto r = baselines::luby_list_coloring(net, inst);
           return std::make_tuple(r.success && validate_ldc(inst, r.phi).ok,
                                  std::uint64_t{r.rounds},
                                  std::uint64_t{colors_used(r.phi)},
                                  std::uint64_t{0});
         }},
        {"repair-from-scratch",
         [](Network& net, const Graph& g, const LdcInstance& inst) {
           const auto r =
               repair::repair(net, inst, Coloring(g.n(), kUncolored));
           return std::make_tuple(r.success && validate_ldc(inst, r.phi).ok,
                                  std::uint64_t{r.rounds},
                                  std::uint64_t{colors_used(r.phi)},
                                  std::uint64_t{0});
         }},
    };
    for (const auto& algo : algos) {
      int valid = 0;
      std::uint64_t rounds = 0, colors = 0, repair_tail = 0, delta = 0;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        const Graph g = fam.make(seed);
        delta = std::max<std::uint64_t>(delta, g.max_degree());
        const auto [outcome, metrics] = bench::closed_loop(
            ctx, g,
            fam.name + "/" + algo.name + "/seed=" + std::to_string(seed),
            algo.run);
        (void)metrics;
        const auto [ok, r, c, rep] = outcome;
        valid += ok;
        rounds += r;
        colors += c;
        repair_tail += rep;
      }
      t.add_row({fam.name, delta, algo.name,
                 std::to_string(valid) + "/" + std::to_string(seeds),
                 std::uint64_t{rounds / seeds}, std::uint64_t{colors / seeds},
                 repair_tail});
    }
  }
}

const harness::Registrar reg{{
    .name = "e11_validity_quality",
    .claim = "Headline invariant: every algorithm x graph family x seed "
             "yields a valid coloring with the repair net idle",
    .axes = {"graph family", "algorithm", "seed"},
    .run = run,
}};

}  // namespace
