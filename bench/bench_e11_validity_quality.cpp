// E11 (Table 6) — end-to-end validity and quality across the whole stack.
//
// Every algorithm x graph family x seed must produce a *valid* coloring;
// the table also records round counts, repair activity (expected ~0 — the
// safety net should stay idle), and color counts. This is the experiment
// that backs the library's headline invariant.
#include "common.hpp"

#include "ldc/baselines/color_reduction.hpp"
#include "ldc/baselines/greedy.hpp"
#include "ldc/baselines/kw_reduction.hpp"
#include "ldc/baselines/luby.hpp"
#include "ldc/d1lc/congest_colorer.hpp"
#include "ldc/repair/repair.hpp"

int main() {
  using namespace ldc;
  Table t("E11: validity & quality matrix ((Delta+1) instances, 3 seeds "
          "each)",
          {"graph", "Delta", "algorithm", "valid/3", "avg rounds",
           "avg colors", "repair rounds (in-solve)"});

  struct Family {
    std::string name;
    std::function<Graph(std::uint64_t)> make;
  };
  const std::vector<Family> families = {
      {"regular d=12", [](std::uint64_t s) {
         return bench::regular_graph(120, 12, s);
       }},
      {"gnp p=0.1", [](std::uint64_t s) {
         Graph g = gen::gnp(120, 0.1, s);
         gen::scramble_ids(g, 1ULL << 24, s + 7);
         return g;
       }},
      {"power-law", [](std::uint64_t s) {
         Graph g = gen::power_law(150, 2.5, 6.0, s);
         gen::scramble_ids(g, 1ULL << 24, s + 7);
         return g;
       }},
      {"torus 12x10", [](std::uint64_t s) {
         Graph g = gen::torus(12, 10);
         gen::scramble_ids(g, 1ULL << 24, s + 7);
         return g;
       }},
      {"tree", [](std::uint64_t s) {
         Graph g = gen::random_tree(150, s);
         gen::scramble_ids(g, 1ULL << 24, s + 7);
         return g;
       }},
  };

  for (const auto& fam : families) {
    struct Algo {
      std::string name;
      // returns (valid, rounds, colors, repair_tail)
      std::function<std::tuple<bool, std::uint64_t, std::uint64_t,
                               std::uint64_t>(const Graph&,
                                              const LdcInstance&)>
          run;
    };
    const std::vector<Algo> algos = {
        {"pipeline(Thm1.4)",
         [](const Graph& g, const LdcInstance& inst) {
           Network net(g);
           const auto r = d1lc::color(net, inst);
           return std::make_tuple(r.valid && validate_proper(g, r.phi).ok,
                                  std::uint64_t{r.rounds},
                                  std::uint64_t{colors_used(r.phi)},
                                  std::uint64_t{r.t13.repair_rounds});
         }},
        {"one-class",
         [](const Graph& g, const LdcInstance& inst) {
           Network net(g);
           const auto r = baselines::linial_then_reduce(net, inst);
           return std::make_tuple(validate_ldc(inst, r.phi).ok,
                                  std::uint64_t{r.rounds},
                                  std::uint64_t{colors_used(r.phi)},
                                  std::uint64_t{0});
         }},
        {"KW-batched",
         [](const Graph& g, const LdcInstance& inst) {
           (void)inst;
           Network net(g);
           const auto r = baselines::linial_then_kw(net);
           return std::make_tuple(validate_proper(g, r.phi).ok,
                                  std::uint64_t{r.rounds},
                                  std::uint64_t{colors_used(r.phi)},
                                  std::uint64_t{0});
         }},
        {"Luby",
         [](const Graph& g, const LdcInstance& inst) {
           Network net(g);
           const auto r = baselines::luby_list_coloring(net, inst);
           return std::make_tuple(r.success && validate_ldc(inst, r.phi).ok,
                                  std::uint64_t{r.rounds},
                                  std::uint64_t{colors_used(r.phi)},
                                  std::uint64_t{0});
         }},
        {"repair-from-scratch",
         [](const Graph& g, const LdcInstance& inst) {
           Network net(g);
           const auto r =
               repair::repair(net, inst, Coloring(g.n(), kUncolored));
           return std::make_tuple(r.success && validate_ldc(inst, r.phi).ok,
                                  std::uint64_t{r.rounds},
                                  std::uint64_t{colors_used(r.phi)},
                                  std::uint64_t{0});
         }},
    };
    for (const auto& algo : algos) {
      int valid = 0;
      std::uint64_t rounds = 0, colors = 0, repair_tail = 0, delta = 0;
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const Graph g = fam.make(seed);
        delta = std::max<std::uint64_t>(delta, g.max_degree());
        const LdcInstance inst = delta_plus_one_instance(g);
        const auto [ok, r, c, rep] = algo.run(g, inst);
        valid += ok;
        rounds += r;
        colors += c;
        repair_tail += rep;
      }
      t.add_row({fam.name, delta, algo.name,
                 std::to_string(valid) + "/3", std::uint64_t{rounds / 3},
                 std::uint64_t{colors / 3}, repair_tail});
    }
  }
  t.print(std::cout);
  return 0;
}
