// E17 (concurrent serving) — the event-loop frontend end to end.
//
// Two tables. The determinism table (E17a) is the serving subsystem's
// core contract made measurable: K scripted sessions run twice against
// an in-process EventLoopServer — once solo (one session at a time) and
// once multiplexed (all K concurrent) — over a single shared Service at
// one worker. Each session's script uses the pause / submit burst /
// cancel-last / resume / drain / shutdown discipline, which pins every
// admission, cancellation and result order, so each session's *entire
// byte stream* must be identical solo vs multiplexed; at 7 workers only
// per-session result order may change, so the sorted union of all lines
// must match the 1-worker union exactly. Both digests are
// machine-independent (streams carry model-exact fields only) and are
// baseline-gated.
//
// The load table (E17b) is observational: an open-loop Zipf-skewed
// workload (bench/load_gen.hpp) against the same server over a real
// unix socket, reporting goodput vs offered load and latency
// percentiles at two offered rates.
#include "common.hpp"
#include "load_gen.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

#include "ldc/service/event_loop.hpp"

namespace {
using namespace ldc;

constexpr const char* kAlgos[] = {"greedy", "luby", "linial", "kw"};
constexpr std::size_t kJobsPerSession = 3;

/// The scripted session for index `idx`: pause, burst of submits (algo
/// rotation, per-session seeds), cancel the last while still gated,
/// resume, drain, shutdown. Every response this script produces is
/// order- and value-deterministic at one worker.
std::string script_for(std::size_t idx) {
  std::string s = "{\"op\":\"pause\"}\n";
  for (std::size_t j = 0; j < kJobsPerSession; ++j) {
    service::Job job;
    job.algorithm = kAlgos[(idx + j) % 4];
    job.seed = 100 * idx + j + 1;
    job.graph.family = "ring";
    job.graph.n = 32;
    harness::Json req = harness::Json::object();
    req.add("op", "submit");
    req.add("job", service::job_to_json(job));
    s += req.dump();
    s.push_back('\n');
  }
  s += "{\"op\":\"cancel\",\"id\":" + std::to_string(kJobsPerSession) +
       "}\n";
  s += "{\"op\":\"resume\"}\n{\"op\":\"drain\"}\n{\"op\":\"shutdown\"}\n";
  return s;
}

/// Writes the whole script, then reads the session's full response
/// stream until the server closes the connection (after "bye").
std::string run_script_client(int fd, const std::string& script) {
  std::size_t off = 0;
  while (off < script.size()) {
    const ssize_t n =
        ::send(fd, script.data() + off, script.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    off += static_cast<std::size_t>(n);
  }
  std::string stream;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    stream.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return stream;
}

/// Runs the K scripted sessions against one EventLoopServer. With
/// `concurrent` every session is live at once (socketpairs adopted up
/// front); otherwise sessions run strictly one after another on the
/// same server — the solo reference streams.
std::vector<std::string> run_sessions(std::size_t workers, std::size_t k,
                                      bool concurrent) {
  service::ServiceConfig cfg;
  cfg.workers = workers;
  cfg.queue_capacity = 512;  // paused bursts from every session fit
  cfg.cache_bytes = 0;       // byte-determinism: no cross-session hits
  service::EventLoopServer server(cfg, {});
  std::thread loop([&] { server.run(); });

  std::vector<std::string> streams(k);
  auto one = [&](std::size_t idx) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) return;
    server.adopt(sv[0]);
    streams[idx] = run_script_client(sv[1], script_for(idx));
  };
  if (concurrent) {
    std::vector<std::thread> clients;
    clients.reserve(k);
    for (std::size_t idx = 0; idx < k; ++idx) {
      clients.emplace_back(one, idx);
    }
    for (auto& t : clients) t.join();
  } else {
    for (std::size_t idx = 0; idx < k; ++idx) one(idx);
  }
  server.stop();
  loop.join();
  return streams;
}

/// Order-insensitive digest: every line from every stream, sorted.
std::uint64_t sorted_union_digest(const std::vector<std::string>& streams) {
  std::vector<std::string> lines;
  for (const auto& s : streams) {
    std::size_t pos = 0, nl;
    while ((nl = s.find('\n', pos)) != std::string::npos) {
      lines.push_back(s.substr(pos, nl - pos));
      pos = nl + 1;
    }
  }
  std::sort(lines.begin(), lines.end());
  std::string all;
  for (const auto& l : lines) {
    all += l;
    all.push_back('\n');
  }
  return bench::bytes_digest(all);
}

void run(harness::ExperimentContext& ctx) {
  // ---- E17a: solo-vs-multiplexed determinism. -------------------------
  auto& det = ctx.table(
      "E17a: concurrent sessions vs solo reference (shared service)",
      {"workers", "sessions", "jobs", "streams match", "union digest"});

  const std::size_t k = ctx.pick<std::size_t>(16, 8);
  const auto solo = run_sessions(1, k, /*concurrent=*/false);
  const auto mux1 = run_sessions(1, k, /*concurrent=*/true);
  std::size_t matches = 0;
  for (std::size_t i = 0; i < k; ++i) {
    if (!solo[i].empty() && solo[i] == mux1[i]) ++matches;
  }
  const std::uint64_t union1 = sorted_union_digest(mux1);
  det.add_row({std::uint64_t{1}, std::uint64_t{k},
               std::uint64_t{k * kJobsPerSession},
               std::string(matches == k
                               ? "ok (byte-identical)"
                               : "DIVERGED(" +
                                     std::to_string(k - matches) + ")"),
               union1});

  // At 7 workers per-session byte order is no longer pinned, but the
  // multiset of emitted lines must be exactly the 1-worker multiset.
  const auto mux7 = run_sessions(7, k, /*concurrent=*/true);
  const std::uint64_t union7 = sorted_union_digest(mux7);
  det.add_row({std::uint64_t{7}, std::uint64_t{k},
               std::uint64_t{k * kJobsPerSession},
               std::string(union7 == union1 ? "ok (same line multiset)"
                                            : "DIVERGED"),
               union7});

  // ---- E17b: open-loop load over a real unix socket. ------------------
  auto& load = ctx.table(
      "E17b: open-loop load, goodput vs offered (2 workers, Zipf 1.1)",
      {"offered/s", "conns", "sent (obs)", "rejected (obs)", "ok (obs)",
       "cached (obs)", "cancelled (obs)", "goodput/s (obs)",
       "p50 us (obs)", "p99 us (obs)", "p99.9 us (obs)",
       "wall ms (obs)"});

  const std::string path =
      "/tmp/ldc_e17_" + std::to_string(::getpid()) + ".sock";
  service::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 256;
  service::EventLoopServer server(cfg, {});
  server.listen_on(path);
  std::thread loop([&] { server.run(); });

  for (const double rate :
       ctx.pick<std::vector<double>>({200.0, 800.0}, {100.0, 400.0})) {
    bench::LoadOptions opt;
    opt.socket_path = path;
    opt.connections = ctx.pick<std::size_t>(4, 2);
    opt.rate = rate;
    opt.duration_ms = ctx.pick<std::uint64_t>(1000, 300);
    opt.hot_jobs = 16;
    opt.zipf_s = 1.1;
    opt.cancel_every = 9;
    opt.deadline_every = 13;
    opt.deadline_ms = 50;
    opt.graph_n = 32;
    opt.seed = 7;
    const bench::LoadReport rep = bench::run_open_loop(opt);
    load.add_row({rate, std::uint64_t{opt.connections}, rep.sent,
                  rep.rejected, rep.ok, rep.cached, rep.cancelled,
                  rep.goodput, rep.p50_us, rep.p99_us, rep.p999_us,
                  rep.wall_ms});
  }
  server.stop();
  loop.join();
}

const harness::Registrar reg{{
    .name = "e17_concurrent_serving",
    .claim = "Event-loop serving: multiplexed sessions are byte-identical "
             "to solo runs at one worker and line-multiset-identical at "
             "seven; open-loop load shows goodput tracking offered rate "
             "with bounded tail latency",
    .axes = {"workers", "sessions", "offered/s"},
    .run = run,
}};

}  // namespace
