// E8 (Figure 4) — defective Linial [Kuh09]: palette vs. defect d.
//
// A d-defective coloring with O((Delta * deg / (d+1))^2) colors in one
// extra round after the proper Linial fixpoint. Shape: the palette falls
// roughly quadratically in (d+1), and the realized max defect never
// exceeds the budget.
#include "common.hpp"

#include "ldc/linial/defective_linial.hpp"

int main() {
  using namespace ldc;
  const std::uint32_t delta = 32;
  const Graph g = bench::regular_graph(192, delta, 21);
  Table t("E8: defective Linial palette vs defect (Delta = 32)",
          {"d", "rounds", "palette", "(Delta/(d+1))^2", "max realized defect",
           "valid"});
  for (std::uint32_t d : {0u, 1u, 2u, 4u, 8u, 16u}) {
    Network net(g);
    const auto res = linial::defective_color(net, d);
    const auto check = validate_defective(
        g, res.phi, static_cast<std::uint32_t>(res.palette), d);
    std::uint32_t realized = 0;
    for (NodeId v = 0; v < g.n(); ++v) {
      std::uint32_t same = 0;
      for (NodeId u : g.neighbors(v)) {
        if (res.phi[u] == res.phi[v]) ++same;
      }
      realized = std::max(realized, same);
    }
    const std::uint64_t ideal =
        static_cast<std::uint64_t>(delta / (d + 1)) * (delta / (d + 1));
    t.add_row({std::uint64_t{d}, std::uint64_t{res.rounds}, res.palette,
               ideal, std::uint64_t{realized}, bench::verdict(check)});
  }
  t.print(std::cout);
  return 0;
}
