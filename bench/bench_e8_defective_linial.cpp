// E8 (Figure 4) — defective Linial [Kuh09]: palette vs. defect d.
//
// A d-defective coloring with O((Delta * deg / (d+1))^2) colors in one
// extra round after the proper Linial fixpoint. Shape: the palette falls
// roughly quadratically in (d+1), and the realized max defect never
// exceeds the budget.
#include "common.hpp"

#include "ldc/linial/defective_linial.hpp"

namespace {
using namespace ldc;

void run(harness::ExperimentContext& ctx) {
  const std::uint32_t delta = ctx.smoke() ? 16 : 32;
  const Graph g =
      bench::regular_graph(ctx.smoke() ? 96 : 192, delta, 21);
  auto& t = ctx.table(
      "E8: defective Linial palette vs defect (Delta = " +
          std::to_string(delta) + ")",
      {"d", "rounds", "palette", "(Delta/(d+1))^2", "max realized defect",
       "valid"});
  for (std::uint32_t d : ctx.pick<std::vector<std::uint32_t>>(
           {0, 1, 2, 4, 8, 16}, {0, 1, 4})) {
    Network net(g);
    ctx.prepare(net);
    const auto res = linial::defective_color(net, d);
    ctx.record("defective-linial/d=" + std::to_string(d), net);
    const auto check = validate_defective(
        g, res.phi, static_cast<std::uint32_t>(res.palette), d);
    std::uint32_t realized = 0;
    for (NodeId v = 0; v < g.n(); ++v) {
      std::uint32_t same = 0;
      for (NodeId u : g.neighbors(v)) {
        if (res.phi[u] == res.phi[v]) ++same;
      }
      realized = std::max(realized, same);
    }
    const std::uint64_t ideal =
        static_cast<std::uint64_t>(delta / (d + 1)) * (delta / (d + 1));
    t.add_row({std::uint64_t{d}, std::uint64_t{res.rounds}, res.palette,
               ideal, std::uint64_t{realized}, bench::verdict(check)});
  }
}

const harness::Registrar reg{{
    .name = "e08_defective_linial",
    .claim = "[Kuh09]: d-defective coloring with ~(Delta/(d+1))^2 colors in "
             "one round after Linial",
    .axes = {"defect d"},
    .run = run,
}};

}  // namespace
