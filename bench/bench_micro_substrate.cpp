// M1-M3 — substrate micro-benchmarks (google-benchmark).
//
// Throughput of the building blocks the simulator leans on: the bit codec
// (every message), the tau&g conflict counting (the inner loop of problems
// P1/P2), candidate family construction, and graph generation.
#include <benchmark/benchmark.h>

#include "ldc/graph/generators.hpp"
#include "ldc/mt/candidates.hpp"
#include "ldc/mt/conflict.hpp"
#include "ldc/support/bitio.hpp"
#include "ldc/support/prf.hpp"

namespace {

void BM_BitCodecRoundTrip(benchmark::State& state) {
  const int values = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ldc::BitWriter w;
    for (int i = 0; i < values; ++i) {
      w.write(static_cast<std::uint64_t>(i) * 2654435761u, 1 + (i % 63));
    }
    ldc::BitReader r(w);
    std::uint64_t sum = 0;
    for (int i = 0; i < values; ++i) sum += r.read(1 + (i % 63));
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * values);
}
BENCHMARK(BM_BitCodecRoundTrip)->Arg(256)->Arg(4096);

void BM_ConflictWeight(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const ldc::Prf prf(1);
  auto a_idx = ldc::sample_distinct(prf, 0, 1 << 20, k);
  auto b_idx = ldc::sample_distinct(prf, 1ULL << 32, 1 << 20, k);
  std::vector<ldc::Color> a(a_idx.begin(), a_idx.end());
  std::vector<ldc::Color> b(b_idx.begin(), b_idx.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ldc::mt::conflict_weight(a, b, 2));
  }
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(BM_ConflictWeight)->Arg(64)->Arg(512)->Arg(4096);

void BM_CandidateFamily(benchmark::State& state) {
  const std::size_t list_len = static_cast<std::size_t>(state.range(0));
  const ldc::Prf prf(2);
  auto idx = ldc::sample_distinct(prf, 0, 1 << 20, list_len);
  std::vector<ldc::Color> list(idx.begin(), idx.end());
  std::uint64_t key = 7;
  for (auto _ : state) {
    ldc::mt::CandidateFamily fam(key++, list,
                                 static_cast<std::uint32_t>(list_len / 4),
                                 16);
    benchmark::DoNotOptimize(fam.set(0).data());
  }
}
BENCHMARK(BM_CandidateFamily)->Arg(64)->Arg(512);

void BM_GnpGeneration(benchmark::State& state) {
  const std::uint32_t n = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const ldc::Graph g = ldc::gen::gnp(n, 8.0 / n, seed++);
    benchmark::DoNotOptimize(g.m());
  }
}
BENCHMARK(BM_GnpGeneration)->Arg(1000)->Arg(10000);

void BM_PrfSampleDistinct(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const ldc::Prf prf(3);
  std::uint64_t off = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ldc::sample_distinct(prf, off++ << 16, 1 << 20, k));
  }
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(BM_PrfSampleDistinct)->Arg(64)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
