// M4 — simulator micro-benchmarks: exchange throughput, a full Linial
// reduction round, and one repair iteration (google-benchmark).
#include <benchmark/benchmark.h>

#include "common.hpp"
#include "ldc/coloring/instance_gen.hpp"
#include "ldc/graph/generators.hpp"
#include "ldc/linial/linial.hpp"
#include "ldc/repair/repair.hpp"
#include "ldc/runtime/network.hpp"

namespace {

using namespace ldc;

void BM_ExchangeBroadcast(benchmark::State& state) {
  const std::uint32_t n = static_cast<std::uint32_t>(state.range(0));
  const Graph g = gen::random_regular(n, 8, 1);
  Network net(g);
  const std::vector<Message> msgs = bench::uniform_broadcast(g.n(), 0x1234, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.exchange_broadcast(msgs));
  }
  state.SetItemsProcessed(state.iterations() * g.n() * 8);
}
BENCHMARK(BM_ExchangeBroadcast)->Arg(256)->Arg(2048);

void BM_LinialFullRun(benchmark::State& state) {
  const std::uint32_t n = static_cast<std::uint32_t>(state.range(0));
  Graph g = gen::random_regular(n, 8, 2);
  gen::scramble_ids(g, 1ULL << 24, 3);
  for (auto _ : state) {
    Network net(g);
    benchmark::DoNotOptimize(linial::color(net).palette);
  }
}
BENCHMARK(BM_LinialFullRun)->Arg(256)->Arg(1024);

void BM_RepairFromScratch(benchmark::State& state) {
  const std::uint32_t n = static_cast<std::uint32_t>(state.range(0));
  const Graph g = gen::random_regular(n, 8, 4);
  const LdcInstance inst = delta_plus_one_instance(g);
  for (auto _ : state) {
    Network net(g);
    benchmark::DoNotOptimize(
        repair::repair(net, inst, Coloring(g.n(), kUncolored)).rounds);
  }
}
BENCHMARK(BM_RepairFromScratch)->Arg(256)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
