// M5 — serial vs parallel round-engine throughput (google-benchmark).
//
// Measures one synchronous round — a full-graph broadcast exchange plus a
// per-node compute pass over the received messages — under the serial
// engine and the sharded parallel engine at various thread counts, up to
// n = 2^20 (~10^6) nodes at Delta = 64. The two engines are bit-for-bit
// equivalent (tests/test_parallel_equivalence.cpp); this bench quantifies
// the wall-clock side of that contract. Thread count 0 means "auto"
// (LDC_THREADS / hardware concurrency), 1 is the serial code path.
//
// The workload graph is a circulant ring-lattice (v ~ v +- 1..32 mod n):
// exactly Delta = 64 everywhere, O(n) to build — the configuration-model
// generator would dominate setup at this size.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common.hpp"
#include "ldc/graph/generators.hpp"
#include "ldc/linial/linial.hpp"
#include "ldc/runtime/network.hpp"

namespace {

using namespace ldc;

Graph circulant(std::uint32_t n, std::uint32_t half) {
  std::vector<std::uint32_t> offsets(n + 1);
  std::vector<NodeId> adj;
  adj.reserve(static_cast<std::size_t>(n) * 2 * half);
  std::vector<NodeId> nb;
  for (NodeId v = 0; v < n; ++v) {
    nb.clear();
    for (std::uint32_t k = 1; k <= half; ++k) {
      nb.push_back((v + k) % n);
      nb.push_back((v + n - k) % n);
    }
    std::sort(nb.begin(), nb.end());
    offsets[v + 1] = offsets[v] + static_cast<std::uint32_t>(nb.size());
    adj.insert(adj.end(), nb.begin(), nb.end());
  }
  return Graph(std::move(offsets), std::move(adj));
}

const Graph& cached_circulant(std::uint32_t n, std::uint32_t half) {
  static std::map<std::pair<std::uint32_t, std::uint32_t>, Graph> cache;
  auto it = cache.find({n, half});
  if (it == cache.end()) {
    it = cache.emplace(std::make_pair(n, half), circulant(n, half)).first;
  }
  return it->second;
}

void configure(Network& net, std::int64_t threads) {
  if (threads != 1) {
    net.set_engine(Network::Engine::kParallel,
                   static_cast<std::size_t>(threads));
  }
}

// One round: everyone broadcasts 16 bits, then every node folds its inbox
// (the shape of every colorer's per-round work).
void BM_ExchangeCompute(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto deg = static_cast<std::uint32_t>(state.range(1));
  const Graph& g = cached_circulant(n, deg / 2);
  Network net(g);
  configure(net, state.range(2));
  const std::vector<Message> msgs = bench::uniform_broadcast(g.n(), 0xbeef, 16);
  std::vector<std::uint64_t> acc(g.n());
  for (auto _ : state) {
    const auto inboxes = net.exchange_broadcast(msgs);
    net.run_node_programs([&](NodeId v) {
      std::uint64_t s = 0;
      for (const auto& [u, m] : inboxes[v]) {
        auto r = m.reader();
        s += r.read(16) + u;
      }
      acc[v] = s;
    });
    benchmark::DoNotOptimize(acc.data());
  }
  state.counters["threads"] =
      static_cast<double>(net.threads());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          g.n() * deg);
}
BENCHMARK(BM_ExchangeCompute)
    ->Args({1 << 16, 64, 1})
    ->Args({1 << 16, 64, 2})
    ->Args({1 << 16, 64, 4})
    ->Args({1 << 16, 64, 0})
    ->Args({1 << 20, 64, 1})
    ->Args({1 << 20, 64, 0})
    ->Unit(benchmark::kMillisecond);

// Full algorithm under both engines: Linial to the fixpoint palette.
void BM_LinialEngines(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const Graph& g = cached_circulant(n, 8);  // Delta = 16
  for (auto _ : state) {
    Network net(g);
    configure(net, state.range(1));
    benchmark::DoNotOptimize(linial::color(net).palette);
  }
}
BENCHMARK(BM_LinialEngines)
    ->Args({1 << 14, 1})
    ->Args({1 << 14, 0})
    ->Args({1 << 17, 1})
    ->Args({1 << 17, 0})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
