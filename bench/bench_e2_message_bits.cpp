// E2 (Table 2) — maximum message size vs. Delta.
//
// Theorem 1.4's point: with Corollary 4.2's color space reduction the
// pipeline's messages stay small (~|C|^(1/r) + log n bits), whereas the
// FHK/MT20-regime LOCAL variant ships whole color lists, i.e.
// Theta(min(|C|, Lambda log |C|)) bits. Luby and the one-class baseline
// use O(log |C|) bits but pay many more rounds (see E1).
#include "common.hpp"

#include "ldc/baselines/color_reduction.hpp"
#include "ldc/baselines/luby.hpp"
#include "ldc/d1lc/congest_colorer.hpp"
#include "ldc/d1lc/fhk_local.hpp"

namespace {
using namespace ldc;

void run(harness::ExperimentContext& ctx) {
  auto& t = ctx.table(
      "E2: max message bits vs Delta  ((degree+1)-lists over |C| = "
      "16*(Delta+1))",
      {"Delta", "|C|", "congest r=2", "congest r=3", "local (no red.)",
       "Luby", "one-class", "r2 rounds", "local rounds"});
  for (std::uint32_t delta : ctx.pick<std::vector<std::uint32_t>>(
           {8, 12, 16, 24, 32}, {8, 12})) {
    const std::uint32_t n = std::max(96u, 5 * delta);
    const Graph g = bench::regular_graph(n, delta, delta + 7);
    const std::uint64_t space = 16ULL * (g.max_degree() + 1);
    const LdcInstance inst = degree_plus_one_instance(g, space, delta);
    const std::string tag = "Delta=" + std::to_string(delta);

    d1lc::PipelineOptions o2;
    o2.reduction_levels = 2;
    Network n2(g);
    ctx.prepare(n2);
    const auto r2 = d1lc::color(n2, inst, o2);
    ctx.record("congest-r2/" + tag, n2);

    d1lc::PipelineOptions o3;
    o3.reduction_levels = 3;
    Network n3(g);
    ctx.prepare(n3);
    d1lc::color(n3, inst, o3);
    ctx.record("congest-r3/" + tag, n3);

    Network nl(g);
    ctx.prepare(nl);
    const auto local = d1lc::color_local_baseline(nl, inst);
    ctx.record("local/" + tag, nl);

    Network nluby(g);
    ctx.prepare(nluby);
    baselines::luby_list_coloring(nluby, inst);
    ctx.record("luby/" + tag, nluby);

    Network ncls(g);
    ctx.prepare(ncls);
    baselines::linial_then_reduce(ncls, inst);
    ctx.record("one-class/" + tag, ncls);

    t.add_row({std::uint64_t{delta}, space,
               std::uint64_t{n2.metrics().max_message_bits},
               std::uint64_t{n3.metrics().max_message_bits},
               std::uint64_t{nl.metrics().max_message_bits},
               std::uint64_t{nluby.metrics().max_message_bits},
               std::uint64_t{ncls.metrics().max_message_bits},
               std::uint64_t{r2.rounds}, std::uint64_t{local.rounds}});
  }
}

const harness::Registrar reg{{
    .name = "e02_message_bits",
    .claim = "Thm 1.4 / Cor 4.2: CONGEST pipeline messages stay "
             "~|C|^(1/r)+log n bits while the LOCAL variant ships whole "
             "lists",
    .axes = {"Delta", "reduction depth r"},
    .run = run,
}};

}  // namespace
