// E1 (Table 1) — (Delta+1)-coloring round complexity vs. Delta.
//
// Theorem 1.4 predicts the pipeline scales like sqrt(Delta) * polylog Delta
// (+ log* n), while the classic deterministic baselines pay ~Delta^2 (one
// initial-class per round) or ~Delta log Delta (Kuhn-Wattenhofer batched
// reduction) rounds after Linial; Luby-style randomized coloring is the
// O(log n) reference. The *shape* to check: the pipeline's growth is
// sublinear in Delta and crosses below both deterministic baselines.
#include "common.hpp"

#include <cmath>

#include "ldc/baselines/color_reduction.hpp"
#include "ldc/baselines/kw_reduction.hpp"
#include "ldc/baselines/luby.hpp"
#include "ldc/d1lc/congest_colorer.hpp"

namespace {
using namespace ldc;

void run(harness::ExperimentContext& ctx) {
  auto& t = ctx.table(
      "E1: (Delta+1)-coloring rounds vs Delta  "
      "(random regular, scrambled 24-bit ids)",
      {"Delta", "n", "pipeline(Thm1.4)", "one-class", "KW-batched",
       "Luby(rand)", "sqrtD", "D^2", "valid"});
  for (std::uint32_t delta : ctx.pick<std::vector<std::uint32_t>>(
           {4, 8, 12, 16, 24, 32, 48}, {4, 8, 12})) {
    const std::uint32_t n = std::max(128u, 6 * delta);
    const Graph g = bench::regular_graph(n, delta, delta);
    const LdcInstance inst = delta_plus_one_instance(g);
    const std::string tag = "Delta=" + std::to_string(delta);

    Network pipe_net(g);
    ctx.prepare(pipe_net);
    const auto pipe = d1lc::color(pipe_net, inst);
    ctx.record("pipeline/" + tag, pipe_net);

    Network cls_net(g);
    ctx.prepare(cls_net);
    const auto cls = baselines::linial_then_reduce(cls_net, inst);
    ctx.record("one-class/" + tag, cls_net);

    Network kw_net(g);
    ctx.prepare(kw_net);
    const auto kw = baselines::linial_then_kw(kw_net);
    ctx.record("kw/" + tag, kw_net);

    Network luby_net(g);
    ctx.prepare(luby_net);
    const auto luby = baselines::luby_list_coloring(luby_net, inst);
    ctx.record("luby/" + tag, luby_net);

    const bool valid = validate_proper(g, pipe.phi).ok &&
                       validate_ldc(inst, cls.phi).ok &&
                       validate_proper(g, kw.phi).ok && luby.success;
    t.add_row({std::uint64_t{delta}, std::uint64_t{g.n()},
               std::uint64_t{pipe.rounds}, std::uint64_t{cls.rounds},
               std::uint64_t{kw.rounds}, std::uint64_t{luby.rounds},
               std::sqrt(static_cast<double>(delta)),
               std::uint64_t{delta} * delta,
               std::string(valid ? "ok" : "VIOLATION")});
  }
}

const harness::Registrar reg{{
    .name = "e01_rounds_vs_delta",
    .claim = "Thm 1.4: (Delta+1)-coloring in ~sqrt(Delta) polylog rounds "
             "crosses below the Delta^2 / Delta-log-Delta baselines",
    .axes = {"Delta"},
    .run = run,
}};

}  // namespace
