// E21 (runtime) — the distributed engine: multi-process equivalence and
// wire costs.
//
// Three tables over the same corpus-backed graphs, each exercising the
// Engine::kDist coordinator with real `ldc_shard` worker processes over
// sockets (DESIGN.md §12). E21a is the hard gate: the full (Delta+1)
// pipeline under kDist at K in {1, 2, 4} must reproduce the serial
// engine's trace digest, communication metrics and coloring byte for
// byte — and so must kSharded at the same K, which pins the three
// engines to one another. E21b extends the gate to faulty rounds: the
// drop/corrupt/crash/sleep decisions are pure PRF functions of
// (seed, round, edge), so the flattened delivered payloads digest
// identically no matter which process resolved them. E21c is the cost
// table: for each K the dist engine must report exactly the in-process
// sharded engine's logical cross-shard cut traffic (the partition is
// the same degree-balanced one), while the physical wire columns —
// frames and bytes actually moved through the coordinator, headers
// included — are reported per run alongside wall clock.
//
// Worker processes are spawned once per (corpus, K) and reused across
// every run bound to that coordinator, exactly how a long-lived service
// would hold them.
#include "common.hpp"

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "ldc/arb/list_arbdefective.hpp"
#include "ldc/dist/coordinator.hpp"
#include "ldc/storage/corpus.hpp"
#include "ldc/support/prf.hpp"

namespace {
using namespace ldc;
using dist::Coordinator;
using dist::CoordinatorOptions;
using dist::WireStats;

/// Unique corpus path for this process, removed by the caller.
std::string corpus_path(const std::string& tag) {
  return "/tmp/ldc_e21_" + tag + "_" + std::to_string(::getpid()) +
         storage::kCorpusExtension;
}

void write_graph(const Graph& g, const std::string& path) {
  storage::CorpusWriter w(path, g.n(), /*with_ids=*/false);
  for (NodeId v = 0; v < g.n(); ++v) w.add_vertex(g.neighbors(v));
  w.close();
}

/// One corpus plus its persistent per-K coordinators (worker fleets).
struct DistFleet {
  std::string path;
  std::vector<std::unique_ptr<Coordinator>> coords;

  DistFleet(const Graph& g, const std::string& tag,
            const std::vector<std::size_t>& ks)
      : path(corpus_path(tag)) {
    write_graph(g, path);
    for (std::size_t k : ks) {
      CoordinatorOptions opt;
      opt.workers = k;
      coords.push_back(std::make_unique<Coordinator>(path, opt));
    }
  }
  ~DistFleet() {
    coords.clear();  // shut the workers down before unlinking their mmap
    std::remove(path.c_str());
  }
  Coordinator& at(std::size_t k) {
    for (auto& c : coords) {
      if (c->shards() == k) return *c;
    }
    throw std::logic_error("e21: no coordinator with K=" +
                           std::to_string(k));
  }
};

/// An engine selection applied to a fresh Network; "serial" is the
/// reference row of every table.
struct EngineSel {
  std::string name;
  std::size_t workers;
  std::function<void(Network&)> apply;
  Coordinator* coord = nullptr;  ///< non-null for the dist rows
};

EngineSel serial_sel() {
  return {"serial", 1, [](Network&) {}, nullptr};
}
EngineSel sharded_sel(std::size_t k) {
  return {"sharded/" + std::to_string(k), k,
          [k](Network& net) { net.set_engine(Network::Engine::kSharded, k); },
          nullptr};
}
EngineSel dist_sel(Coordinator& coord) {
  return {"dist/" + std::to_string(coord.shards()), coord.shards(),
          [&coord](Network& net) { net.attach_dist(&coord); }, &coord};
}

// ---- E21a: pipeline digest gate. --------------------------------------

struct PipelineOut {
  RunMetrics metrics;
  std::uint64_t digest = 0;
  std::uint64_t rounds = 0;
  Coloring phi;
  bool valid = false;
  double wall_ms = 0.0;
};

PipelineOut run_pipeline(harness::ExperimentContext& ctx, const Graph& g,
                         const LdcInstance& inst, const EngineSel& sel,
                         const std::string& label) {
  Network net(g);
  ctx.prepare(net);
  sel.apply(net);
  const auto start = std::chrono::steady_clock::now();
  const auto lin = linial::color(net);
  const auto res = arb::solve_list_arbdefective(
      net, inst, lin.phi, lin.palette,
      arb::two_phase_solver(mt::CandidateParams{}), {});
  const auto stop = std::chrono::steady_clock::now();
  ctx.record(label, net);
  PipelineOut out;
  out.metrics = net.metrics();
  out.digest = net.trace() ? net.trace()->digest() : 0;
  out.rounds = res.stats.rounds + lin.rounds;
  out.phi = res.out.colors;
  out.valid = res.valid;
  out.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  return out;
}

// ---- E21b: faulty-round digest gate. ----------------------------------

struct FaultyOut {
  RunMetrics metrics;
  std::uint64_t payload_digest = 0;
  std::uint64_t trace_digest = 0;
};

/// Six explicit exchange rounds under a fault plan, digesting every
/// delivered (receiver, sender, payload) triple in inbox order.
FaultyOut run_faulty(const Graph& g, const EngineSel& sel,
                     const FaultPlan& plan) {
  Network net(g);
  sel.apply(net);
  Trace trace;
  net.attach_trace(&trace);
  net.attach_faults(&plan);
  FaultyOut out;
  for (std::uint64_t r = 0; r < 6; ++r) {
    std::vector<Network::Outbox> outboxes(g.n());
    for (NodeId u = 0; u < g.n(); ++u) {
      for (NodeId v : g.neighbors(u)) {
        BitWriter w;
        w.write(hash_combine(r, (static_cast<std::uint64_t>(u) << 20) | v),
                40);
        outboxes[u].emplace_back(v, Message::from(w));
      }
    }
    const auto in = net.exchange(outboxes);
    for (NodeId v = 0; v < g.n(); ++v) {
      for (const auto& [sender, msg] : in[v]) {
        auto rd = msg.reader();
        const std::uint64_t item = hash_combine(
            (static_cast<std::uint64_t>(v) << 32) | sender, rd.read(40));
        out.payload_digest =
            service::fnv1a64(&item, sizeof item, out.payload_digest);
      }
    }
  }
  out.metrics = net.metrics();
  out.trace_digest = trace.digest();
  return out;
}

// ---- E21c: traffic gate + wire costs. ---------------------------------

struct CostOut {
  std::uint64_t digest = 0;
  ShardTraffic traffic;
  WireStats wire;  ///< this run's delta (dist rows only)
  double wall_ms = 0.0;
};

CostOut run_linial_cost(const Graph& g, const EngineSel& sel) {
  const WireStats before =
      sel.coord != nullptr ? sel.coord->wire_stats() : WireStats{};
  Network net(g);
  sel.apply(net);
  const auto t0 = std::chrono::steady_clock::now();
  const auto res = linial::color(net);
  const auto t1 = std::chrono::steady_clock::now();
  CostOut out;
  out.digest = service::fnv1a64(res.phi.data(),
                                res.phi.size() * sizeof(res.phi[0]));
  out.traffic = net.cross_shard_traffic();
  if (sel.coord != nullptr) {
    const WireStats after = sel.coord->wire_stats();
    out.wire.frames_sent = after.frames_sent - before.frames_sent;
    out.wire.frames_received = after.frames_received - before.frames_received;
    out.wire.bytes_sent = after.bytes_sent - before.bytes_sent;
    out.wire.bytes_received = after.bytes_received - before.bytes_received;
  }
  out.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return out;
}

void run(harness::ExperimentContext& ctx) {
  const std::vector<std::size_t> ks = {1, 2, 4};

  // ---- E21a ------------------------------------------------------------
  const std::uint32_t delta = ctx.smoke() ? 10 : 16;
  const Graph pg =
      bench::regular_graph(ctx.smoke() ? 96 : 256, delta, 177);
  const LdcInstance inst = delta_plus_one_instance(pg);
  DistFleet fleet(pg, "pipe", ks);

  std::vector<EngineSel> gate_sels;
  gate_sels.push_back(serial_sel());
  for (std::size_t k : ks) gate_sels.push_back(sharded_sel(k));
  for (std::size_t k : ks) gate_sels.push_back(dist_sel(fleet.at(k)));

  auto& gate = ctx.table(
      "E21a: distributed engine equivalence ((Delta+1) pipeline, Delta = " +
          std::to_string(delta) + ", n = " + std::to_string(pg.n()) + ")",
      {"engine", "rounds", "total bits", "trace digest", "matches serial",
       "valid", "wall ms (obs)"});
  PipelineOut serial;
  for (const auto& sel : gate_sels) {
    const auto out = run_pipeline(ctx, pg, inst, sel,
                                  "pipeline/" + sel.name);
    const bool first = sel.name == "serial";
    if (first) serial = out;
    const bool same = out.metrics.same_communication(serial.metrics) &&
                      out.digest == serial.digest &&
                      out.rounds == serial.rounds && out.phi == serial.phi;
    gate.add_row({sel.name, std::uint64_t{out.rounds},
                  std::uint64_t{out.metrics.total_bits},
                  std::uint64_t{out.digest},
                  std::string(first ? "reference"
                                    : (same ? "ok" : "DIVERGED")),
                  std::string(out.valid ? "ok" : "VIOLATION"),
                  out.wall_ms});
  }

  // ---- E21b ------------------------------------------------------------
  const Graph fg = bench::regular_graph(ctx.smoke() ? 60 : 160, 8, 21);
  DistFleet fault_fleet(fg, "fault", ks);
  std::vector<std::pair<std::string, FaultPlan>> plans;
  {
    FaultPlan p;
    p.seed = 0xfa01;
    p.drop_rate = 0.15;
    plans.push_back({"drop15", p});
  }
  {
    FaultPlan p;
    p.seed = 0xfa04;
    p.drop_rate = 0.05;
    p.corrupt_rate = 0.05;
    p.crash_rate = 0.01;
    p.sleep_rate = 0.08;
    p.max_crashes = 4;
    plans.push_back({"mixed", p});
  }
  std::vector<EngineSel> fault_sels;
  fault_sels.push_back(serial_sel());
  fault_sels.push_back(sharded_sel(4));
  for (std::size_t k : ks) fault_sels.push_back(dist_sel(fault_fleet.at(k)));

  auto& faults = ctx.table(
      "E21b: fault-plan equivalence across processes (6 faulty rounds, "
      "8-regular, n = " + std::to_string(fg.n()) + ")",
      {"plan", "engine", "dropped", "corrupted", "crashes", "sleeps",
       "payload digest", "matches serial"});
  for (const auto& [plan_name, plan] : plans) {
    FaultyOut ref;
    for (const auto& sel : fault_sels) {
      const auto out = run_faulty(fg, sel, plan);
      const bool first = sel.name == "serial";
      if (first) ref = out;
      const bool same = out.payload_digest == ref.payload_digest &&
                        out.trace_digest == ref.trace_digest &&
                        out.metrics.same_communication(ref.metrics);
      faults.add_row({plan_name, sel.name, out.metrics.messages_dropped,
                      out.metrics.messages_corrupted,
                      out.metrics.node_crashes, out.metrics.node_sleeps,
                      std::uint64_t{out.payload_digest},
                      std::string(first ? "reference"
                                        : (same ? "ok" : "DIVERGED"))});
    }
  }

  // ---- E21c ------------------------------------------------------------
  // The logical/physical split: cross-shard messages and bits must be
  // EXACTLY the in-process sharded engine's numbers (same partition, same
  // staging rule), while frames/bytes are the wire's own story — K² batch
  // frames per exchange round plus acks, relays and inboxes, headers and
  // digests included.
  auto& cost = ctx.table(
      "E21c: logical cut traffic vs physical wire cost (Linial, n = " +
          std::to_string(pg.n()) + ")",
      {"K", "engine", "x-shard msgs", "x-shard bits", "matches sharded",
       "frames tx+rx", "wire bytes tx+rx", "wall ms (obs)"});
  for (std::size_t k : ks) {
    const auto sh = run_linial_cost(pg, sharded_sel(k));
    const auto di = run_linial_cost(pg, dist_sel(fleet.at(k)));
    const bool same = di.traffic.messages == sh.traffic.messages &&
                      di.traffic.bits == sh.traffic.bits &&
                      di.digest == sh.digest;
    cost.add_row({std::uint64_t{k}, std::string("sharded"),
                  sh.traffic.messages, sh.traffic.bits,
                  std::string("reference"), std::uint64_t{0},
                  std::uint64_t{0}, sh.wall_ms});
    cost.add_row({std::uint64_t{k}, std::string("dist"),
                  di.traffic.messages, di.traffic.bits,
                  std::string(same ? "ok" : "DIVERGED"),
                  di.wire.frames_sent + di.wire.frames_received,
                  di.wire.bytes_sent + di.wire.bytes_received, di.wall_ms});
  }
}

const harness::Registrar reg{{
    .name = "e21_distributed",
    .claim = "Runtime: the multi-process distributed engine reproduces "
             "the serial engine's digests, metrics, colorings and fault "
             "decisions exactly at every worker count, reports the "
             "in-process sharded engine's cut traffic to the message and "
             "bit, and prices the physical wire (frames and bytes, "
             "headers included) separately",
    .axes = {"engine", "workers", "plan"},
    .run = run,
}};

}  // namespace
