// Shared helpers for the experiment harnesses. Each bench binary prints
// one or more ldc::Table objects whose rows EXPERIMENTS.md quotes.
#pragma once

#include <cstdint>
#include <iostream>

#include "ldc/coloring/instance_gen.hpp"
#include "ldc/coloring/validate.hpp"
#include "ldc/graph/generators.hpp"
#include "ldc/linial/linial.hpp"
#include "ldc/runtime/network.hpp"
#include "ldc/support/tables.hpp"

namespace ldc::bench {

/// Random regular graph with scrambled CONGEST-style identifiers.
inline Graph regular_graph(std::uint32_t n, std::uint32_t d,
                           std::uint64_t seed) {
  if ((static_cast<std::uint64_t>(n) * d) % 2 != 0) ++n;
  Graph g = gen::random_regular(n, d, seed);
  gen::scramble_ids(g, std::uint64_t{1} << 24, seed + 101);
  return g;
}

/// "ok"/"VIOLATION" cell from a validation result.
inline std::string verdict(const ValidationResult& r) {
  return r.ok ? "ok" : "VIOLATION(" + std::to_string(r.violations.size()) +
                           ")";
}

}  // namespace ldc::bench
