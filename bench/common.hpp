// Shared helpers for the experiment bodies registered with the harness
// (src/ldc/harness). Each experiment emits ResultTables whose rows
// EXPERIMENTS.md quotes and the structured sink serializes.
#pragma once

#include <cstdint>
#include <iostream>
#include <utility>

#include "ldc/coloring/instance_gen.hpp"
#include "ldc/coloring/validate.hpp"
#include "ldc/graph/generators.hpp"
#include "ldc/harness/experiment.hpp"
#include "ldc/harness/registry.hpp"
#include "ldc/linial/linial.hpp"
#include "ldc/oldc/multi_defect.hpp"
#include "ldc/oldc/two_phase.hpp"
#include "ldc/reduction/color_space.hpp"
#include "ldc/runtime/network.hpp"
#include "ldc/service/service.hpp"
#include "ldc/support/tables.hpp"

namespace ldc::bench {

/// Order-sensitive digest of an emitted result stream (model-exact
/// fields only), comparable across runs and machines. Shared by the
/// service experiments (E16 scripted sessions, E17 concurrent sessions).
inline std::uint64_t stream_digest(
    const std::vector<service::JobResult>& rs) {
  std::string s;
  for (const auto& r : rs) {
    s += std::to_string(r.id) + ":" + r.status + ":" +
         (r.cached ? "1" : "0") + ":" + std::to_string(r.digest) + ":" +
         std::to_string(r.outcome.color_digest) + "|";
  }
  return service::fnv1a64(s.data(), s.size());
}

/// FNV-1a 64 of raw bytes — for digesting whole protocol streams, whose
/// lines already contain only model-exact fields.
inline std::uint64_t bytes_digest(const std::string& s) {
  return service::fnv1a64(s.data(), s.size());
}

/// Random d-regular graph with scrambled CONGEST-style identifiers. A
/// d-regular graph exists only when n*d is even, so an odd request is
/// rounded up to n+1 vertices — the returned graph is authoritative:
/// callers must report g.n() in tables/JSONL, never the requested n.
inline Graph regular_graph(std::uint32_t n, std::uint32_t d,
                           std::uint64_t seed) {
  const std::uint32_t actual =
      ((static_cast<std::uint64_t>(n) * d) % 2 != 0) ? n + 1 : n;
  Graph g = gen::random_regular(actual, d, seed);
  gen::scramble_ids(g, std::uint64_t{1} << 24, seed + 101);
  return g;
}

/// Scrambles a generated graph's ids into a CONGEST-style `id_bits` space
/// (the setup step every non-regular family repeated inline).
inline Graph scrambled(Graph g, std::uint64_t seed,
                       std::uint64_t id_bits = 24) {
  gen::scramble_ids(g, std::uint64_t{1} << id_bits, seed);
  return g;
}

/// "ok"/"VIOLATION" cell from a validation result.
inline std::string verdict(const ValidationResult& r) {
  return r.ok ? "ok" : "VIOLATION(" + std::to_string(r.violations.size()) +
                           ")";
}

/// One `bits`-bit payload replicated to every node, ready for
/// Network::exchange_broadcast — the "copy one writer's message per
/// neighbor" setup the micro-benches repeated inline. Under the zero-copy
/// plane all n handles (and every delivered inbox slot) share the single
/// payload block, so this allocates once regardless of n or fan-out.
inline std::vector<Message> uniform_broadcast(std::size_t n,
                                              std::uint64_t value,
                                              int bits) {
  BitWriter w;
  w.write(value, bits);
  return std::vector<Message>(n, Message::from(w));
}

/// One closed-loop run of the standard "(Delta+1) instance -> prepared
/// network -> algorithm -> record" cycle that E11/E12 (and now E16)
/// repeated inline. `body(net, g, inst)` runs the algorithm; the helper
/// owns instance construction, ctx.prepare (trace/fault wiring) and
/// ctx.record under `label`. Returns the body's result paired with a
/// snapshot of the network's run metrics.
template <typename Body>
auto closed_loop(harness::ExperimentContext& ctx, const Graph& g,
                 const std::string& label, Body&& body) {
  const LdcInstance inst = delta_plus_one_instance(g);
  Network net(g);
  ctx.prepare(net);
  auto result = std::forward<Body>(body)(net, g, inst);
  ctx.record(label, net);
  return std::make_pair(std::move(result), net.metrics());
}

/// Random weighted oriented LDC instance — the common setup of every
/// OLDC-flavoured experiment (E3/E4/E10/E13, A1/A4).
inline LdcInstance weighted_oriented_instance(
    const Graph& g, const Orientation& orient, std::uint64_t color_space,
    double kappa, std::uint32_t max_defect, std::uint64_t seed,
    double one_plus_nu = 2.0) {
  RandomLdcParams p;
  p.color_space = color_space;
  p.one_plus_nu = one_plus_nu;
  p.kappa = kappa;
  p.max_defect = max_defect;
  p.seed = seed;
  return random_weighted_oriented_instance(g, orient, p);
}

/// Linial bootstrap followed by the two-phase OLDC solver on the same
/// network — the shared body of E3, E10b, E13 and A1.
struct TwoPhaseRun {
  oldc::TwoPhaseResult res;
  std::uint64_t linial_rounds = 0;
};

inline TwoPhaseRun two_phase_after_linial(
    Network& net, const LdcInstance& inst, const Orientation& orient,
    const mt::CandidateParams& params = {}) {
  const auto lin = linial::color(net);
  oldc::TwoPhaseInput in;
  in.inst = &inst;
  in.orientation = &orient;
  in.initial = &lin.phi;
  in.m = lin.palette;
  in.params = params;
  TwoPhaseRun run;
  run.res = oldc::solve_two_phase(net, in);
  run.linial_rounds = lin.rounds;
  return run;
}

/// Multi-defect base solver for the color space reduction experiments
/// (E4, A4). Captures the candidate parameters by value so the returned
/// solver has no dangling references.
inline reduction::OldcSolver multi_defect_solver(
    mt::CandidateParams params = {}) {
  return [params](Network& net, const LdcInstance& i, const Orientation& o,
                  const Coloring& init, std::uint64_t m) {
    oldc::MultiDefectInput in;
    in.inst = &i;
    in.orientation = &o;
    in.initial = &init;
    in.m = m;
    in.params = params;
    return oldc::solve_multi_defect(net, in);
  };
}

}  // namespace ldc::bench
