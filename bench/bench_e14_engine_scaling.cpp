// E14 (harness) — serial vs parallel engine: identical model, faster clock.
//
// The parallel round engine must be observationally equivalent to the
// serial one: every model-exact quantity (rounds, messages, bits, trace
// digest) and the computed coloring itself are byte-identical across
// engines and thread counts. Only host wall-clock may differ. This
// experiment runs the full (Delta+1) pipeline under each engine config
// and reports the equivalence verdict as a deterministic column and the
// wall time as an observational one — so the baseline checker pins the
// equivalence forever while staying immune to machine speed.
#include "common.hpp"

#include <chrono>

#include "ldc/arb/list_arbdefective.hpp"

namespace {
using namespace ldc;

struct PipelineOut {
  RunMetrics metrics;
  std::uint64_t digest = 0;
  std::uint64_t rounds = 0;
  Coloring phi;
  bool valid = false;
  double wall_ms = 0.0;
};

PipelineOut run_pipeline(harness::ExperimentContext& ctx, const Graph& g,
                         const LdcInstance& inst, Network::Engine engine,
                         std::size_t threads, const std::string& label) {
  Network net(g);
  ctx.prepare(net);
  net.set_engine(engine, threads);
  const auto start = std::chrono::steady_clock::now();
  const auto lin = linial::color(net);
  const auto res = arb::solve_list_arbdefective(
      net, inst, lin.phi, lin.palette,
      arb::two_phase_solver(mt::CandidateParams{}), {});
  const auto stop = std::chrono::steady_clock::now();
  ctx.record(label, net);
  PipelineOut out;
  out.metrics = net.metrics();
  out.digest = net.trace() ? net.trace()->digest() : 0;
  out.rounds = res.stats.rounds + lin.rounds;
  out.phi = res.out.colors;
  out.valid = res.valid;
  out.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  return out;
}

void run(harness::ExperimentContext& ctx) {
  const std::uint32_t delta = ctx.smoke() ? 12 : 24;
  const Graph g =
      bench::regular_graph(ctx.smoke() ? 128 : 512, delta, 77);
  const LdcInstance inst = delta_plus_one_instance(g);

  auto& t = ctx.table(
      "E14: engine equivalence and scaling ((Delta+1) pipeline, Delta = " +
          std::to_string(delta) + ", n = " + std::to_string(g.n()) + ")",
      {"engine", "threads", "rounds", "total bits", "trace digest",
       "matches serial", "valid", "wall ms (obs)"});

  struct Config {
    Network::Engine engine;
    std::size_t threads;
    std::string name;
  };
  std::vector<Config> configs = {{Network::Engine::kSerial, 1, "serial"}};
  for (std::size_t threads :
       ctx.pick<std::vector<std::size_t>>({2, 4}, {2})) {
    configs.push_back({Network::Engine::kParallel, threads,
                       "parallel/" + std::to_string(threads)});
  }

  PipelineOut serial;
  for (const auto& cfg : configs) {
    const auto out = run_pipeline(ctx, g, inst, cfg.engine, cfg.threads,
                                  "pipeline/" + cfg.name);
    const bool first = cfg.engine == Network::Engine::kSerial;
    if (first) serial = out;
    const bool same = out.metrics.same_communication(serial.metrics) &&
                      out.digest == serial.digest &&
                      out.rounds == serial.rounds && out.phi == serial.phi;
    t.add_row({cfg.name, std::uint64_t{cfg.threads},
               std::uint64_t{out.rounds}, std::uint64_t{out.metrics.total_bits},
               std::uint64_t{out.digest},
               std::string(first ? "reference" : (same ? "ok" : "DIVERGED")),
               std::string(out.valid ? "ok" : "VIOLATION"), out.wall_ms});
  }
}

const harness::Registrar reg{{
    .name = "e14_engine_scaling",
    .claim = "Harness: the parallel round engine reproduces the serial "
             "engine's communication, digest, and coloring exactly; only "
             "wall-clock differs",
    .axes = {"engine", "threads"},
    .run = run,
}};

}  // namespace
