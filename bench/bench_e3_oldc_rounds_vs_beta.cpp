// E3 (Figure 1) — OLDC round complexity vs. maximum outdegree beta.
//
// Theorem 1.1: the two-phase algorithm solves oriented list defective
// coloring instances with sum (d_v(x)+1)^2 >= alpha beta_v^2 kappa in
// O(log beta) rounds. The figure: rounds and the gamma-class count h
// should track log2(beta), and the output must validate at every size.
#include "common.hpp"

#include "ldc/oldc/two_phase.hpp"
#include "ldc/support/math.hpp"

int main() {
  using namespace ldc;
  Table t("E3: two-phase OLDC rounds vs beta  (instances with "
          "sum (d+1)^2 >= ~40 beta^2, defects ~ beta/4)",
          {"beta", "n", "rounds", "aux_rounds", "h", "log2(beta)",
           "p1_relaxed", "repaired", "valid"});
  for (std::uint32_t beta : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    const std::uint32_t n = std::max(48u, 3 * beta);
    const Graph g = bench::regular_graph(n, beta, beta + 3);
    const Orientation orient = Orientation::by_decreasing_id(g);

    RandomLdcParams p;
    p.color_space = 64ULL * beta * beta + 256;
    p.one_plus_nu = 2.0;
    p.kappa = 40.0;
    p.max_defect = std::max(1u, beta / 4);
    p.seed = beta;
    const LdcInstance inst = random_weighted_oriented_instance(g, orient, p);

    Network net(g);
    const auto lin = linial::color(net);
    oldc::TwoPhaseInput in;
    in.inst = &inst;
    in.orientation = &orient;
    in.initial = &lin.phi;
    in.m = lin.palette;
    const auto res = oldc::solve_two_phase(net, in);
    const auto check = validate_oldc(inst, orient, res.phi);

    t.add_row({std::uint64_t{beta}, std::uint64_t{g.n()},
               std::uint64_t{res.stats.rounds},
               std::uint64_t{res.stats.aux_rounds},
               std::uint64_t{res.stats.h},
               std::uint64_t{static_cast<std::uint64_t>(
                   ceil_log2(std::max(2u, beta)))},
               std::uint64_t{res.stats.p1_relaxed},
               std::string(res.stats.repaired ? "yes" : "no"),
               bench::verdict(check)});
  }
  t.print(std::cout);
  return 0;
}
