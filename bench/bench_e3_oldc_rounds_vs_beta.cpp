// E3 (Figure 1) — OLDC round complexity vs. maximum outdegree beta.
//
// Theorem 1.1: the two-phase algorithm solves oriented list defective
// coloring instances with sum (d_v(x)+1)^2 >= alpha beta_v^2 kappa in
// O(log beta) rounds. The figure: rounds and the gamma-class count h
// should track log2(beta), and the output must validate at every size.
#include "common.hpp"

#include "ldc/support/math.hpp"

namespace {
using namespace ldc;

void run(harness::ExperimentContext& ctx) {
  auto& t = ctx.table(
      "E3: two-phase OLDC rounds vs beta  (instances with "
      "sum (d+1)^2 >= ~40 beta^2, defects ~ beta/4)",
      {"beta", "n", "rounds", "aux_rounds", "h", "log2(beta)", "p1_relaxed",
       "repaired", "valid"});
  for (std::uint32_t beta : ctx.pick<std::vector<std::uint32_t>>(
           {2, 4, 8, 16, 32, 64, 128}, {2, 4, 8})) {
    const std::uint32_t n = std::max(48u, 3 * beta);
    const Graph g = bench::regular_graph(n, beta, beta + 3);
    const Orientation orient = Orientation::by_decreasing_id(g);
    const LdcInstance inst = bench::weighted_oriented_instance(
        g, orient, 64ULL * beta * beta + 256, 40.0,
        std::max(1u, beta / 4), beta);

    Network net(g);
    ctx.prepare(net);
    const auto run = bench::two_phase_after_linial(net, inst, orient);
    ctx.record("two-phase/beta=" + std::to_string(beta), net);
    const auto check = validate_oldc(inst, orient, run.res.phi);

    t.add_row({std::uint64_t{beta}, std::uint64_t{g.n()},
               std::uint64_t{run.res.stats.rounds},
               std::uint64_t{run.res.stats.aux_rounds},
               std::uint64_t{run.res.stats.h},
               std::uint64_t{static_cast<std::uint64_t>(
                   ceil_log2(std::max(2u, beta)))},
               std::uint64_t{run.res.stats.p1_relaxed},
               std::string(run.res.stats.repaired ? "yes" : "no"),
               bench::verdict(check)});
  }
}

const harness::Registrar reg{{
    .name = "e03_oldc_rounds_vs_beta",
    .claim = "Thm 1.1: two-phase OLDC solves weight-condition instances in "
             "O(log beta) rounds",
    .axes = {"beta"},
    .run = run,
}};

}  // namespace
